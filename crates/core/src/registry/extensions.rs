//! Beyond-the-paper extension experiments (the §5 future-work directions):
//! deeper buffers, bursty arrivals, non-uniform traffic, and system-size
//! scaling.

use super::{scaled, small_spec_48, RunOpts};
use crate::runner::{par_map, Scenario};
use cocnet_model::{
    evaluate, evaluate_with_profile, saturation_point, ModelOptions, OutgoingProfile, Workload,
};
use cocnet_sim::{
    run_simulation_arrivals, run_simulation_built, run_simulation_flit_built, BuiltSystem,
    Coupling, FaultAction, FaultEvent, FaultSchedule, SimConfig,
};
use cocnet_stats::Table;
use cocnet_topology::{AscentPolicy, ClusterSpec, SystemSpec, TopoSpec, TorusShape};
use cocnet_workloads::{presets, ArrivalSpec, Pattern};

/// Extension experiment: relaxing assumption 6 (single-flit buffers).
///
/// The paper's model assumes one flit of buffering per channel. Real
/// switches (Myrinet/InfiniBand/QsNet, the technologies §2 names) buffer
/// more. This experiment sweeps the flit-buffer depth in the flit-level
/// engine and reports latency across loads — quantifying how much of the
/// wormhole blocking the model describes is an artefact of minimal
/// buffering.
///
/// All (rate × depth) simulations run concurrently via the runner's
/// [`par_map`].
pub fn buffer_depth(opts: &RunOpts) {
    let spec = small_spec_48();
    let built = BuiltSystem::build(&spec, 256.0);
    let rates = [1e-3, 2e-3, 3e-3, 4e-3];
    let depths = [1u32, 2, 4, 32];
    let jobs: Vec<(f64, u32)> = rates
        .iter()
        .flat_map(|&rate| depths.iter().map(move |&d| (rate, d)))
        .collect();
    let base = scaled(
        &SimConfig {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed: 23,
            coupling: Coupling::StoreAndForward,
            ..SimConfig::default()
        },
        opts,
    );
    let results = par_map(&jobs, |&(rate, depth)| {
        let wl = Workload::new(rate, 32, 256.0).unwrap();
        let cfg = SimConfig {
            flit_buffer_depth: depth,
            ..base.clone()
        };
        let r = run_simulation_flit_built(&built, &wl, Pattern::Uniform, &cfg);
        if r.completed {
            format!("{:.2}", r.latency.mean)
        } else {
            "incomplete".into()
        }
    });

    println!("## N=48, M=32, Lm=256 — flit-buffer-depth sweep (flit engine)");
    let mut table = Table::new(["rate", "depth=1", "depth=2", "depth=4", "depth=32"]);
    for (i, &rate) in rates.iter().enumerate() {
        let mut row = vec![format!("{rate:.2e}")];
        row.extend_from_slice(&results[i * depths.len()..(i + 1) * depths.len()]);
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "finding: buffer depth is irrelevant in this regime. With messages\n\
         (M=32 flits) much longer than any path (<= 14 hops), a worm spans its\n\
         entire route whether or not intermediate channels can buffer extra\n\
         flits: a blocked header holds the same set of channels, and deeper\n\
         buffers can only compress flits that would otherwise wait at the\n\
         source. The paper's single-flit-buffer assumption 6 is therefore\n\
         *not* a material simplification for its workloads -- buffer depth\n\
         would start to matter only for messages shorter than the path."
    );
}

/// Extension experiment: bursty (interrupted-Poisson) traffic at a fixed
/// mean rate.
///
/// The paper's assumption 1 is per-node Poisson generation. Real parallel
/// applications emit communication in phases; this experiment holds the
/// mean rate constant and shrinks the duty cycle, showing how far the
/// Poisson-based analytical model drifts as traffic becomes bursty —
/// the time-domain counterpart of the §5 "non-uniform traffic" future work.
///
/// The duty-cycle points run concurrently via the runner's [`par_map`].
pub fn bursty(opts: &RunOpts) {
    let spec = presets::org_544();
    let rate = 4e-4;
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let model_opts = ModelOptions::default();
    let model = evaluate(&spec, &wl, &model_opts).unwrap().latency;
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    let cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 99,
            ..SimConfig::default()
        },
        opts,
    );
    println!(
        "## N=544, M=32, Lm=256, mean rate {rate:.1e} — burstiness sweep\n\
         (burst length 8 messages; duty 1.00 = the paper's Poisson assumption)"
    );
    println!("analytical model (Poisson assumption): {model:.2}\n");
    let duties = [1.0, 0.5, 0.25, 0.1];
    let runs = par_map(&duties, |&duty| {
        let arrival = ArrivalSpec::bursty(rate, duty, 8.0);
        run_simulation_arrivals(&built, &wl, Pattern::Uniform, &cfg, arrival)
    });
    let mut table = Table::new(["duty cycle", "sim latency", "vs Poisson sim", "model err%"]);
    let poisson_ref = runs[0].latency.mean;
    for (&duty, r) in duties.iter().zip(&runs) {
        let mean = r.latency.mean;
        table.push_row([
            format!("{duty:.2}"),
            if r.completed {
                format!("{mean:.2}")
            } else {
                "incomplete".into()
            },
            format!("{:+.1}%", (mean / poisson_ref - 1.0) * 100.0),
            format!("{:+.1}", (model - mean) / mean * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "burstiness raises contention at the same mean load; the Poisson-based\n\
         model grows increasingly optimistic as the duty cycle shrinks."
    );
}

/// Extension experiment (the paper's §5 future work): non-uniform traffic.
///
/// Sweeps the cluster-locality parameter ψ at a fixed generation rate and
/// compares the generalised analytical model (outgoing-probability profile)
/// against the simulator's cluster-local pattern, on the paper's N=544
/// organization.
///
/// The locality points run concurrently via the runner's [`par_map`].
pub fn nonuniform(opts: &RunOpts) {
    let spec = presets::org_544();
    let rate = 4e-4;
    let wl = Workload {
        lambda_g: rate,
        ..presets::wl_m32_l256()
    };
    let model_opts = ModelOptions::default();
    let cfg = scaled(
        &SimConfig {
            warmup: 2_000,
            measured: 20_000,
            drain: 2_000,
            seed: 55,
            ..SimConfig::default()
        },
        opts,
    );
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    println!("## N=544, M=32, Lm=256, rate={rate:.1e} — locality sweep");
    let localities = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95];
    let sims = par_map(&localities, |&locality| {
        run_simulation_built(&built, &wl, Pattern::ClusterLocal { locality }, &cfg)
    });
    let mut table = Table::new(["locality", "model", "sim", "err%", "sim inter-frac"]);
    for (&locality, sim) in localities.iter().zip(&sims) {
        let profile = OutgoingProfile::cluster_local(&spec, locality).unwrap();
        let model = evaluate_with_profile(&spec, &wl, &model_opts, &profile).map(|o| o.latency);
        let model_cell = model
            .as_ref()
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|_| "saturated".into());
        let err = model
            .map(|m| format!("{:+.1}", (m - sim.latency.mean) / sim.latency.mean * 100.0))
            .unwrap_or_else(|_| "-".into());
        table.push_row([
            format!("{locality:.2}"),
            model_cell,
            format!("{:.2}", sim.latency.mean),
            err,
            format!("{:.3}", sim.inter_fraction()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "higher locality keeps traffic on the fast intra-cluster networks and\n\
         bypasses the concentrators: latency falls and the model error shrinks\n\
         (the documented inter-cluster offset applies only to outgoing traffic)."
    );
}

/// Robustness extension: graceful degradation under link failures.
///
/// Sweeps the statically failed-link fraction on the 48-node system and
/// reports, for each fraction, the latency of what still gets through and
/// the delivered fraction — the graceful-degradation curve. The fault
/// masks are nested prefixes of one seeded permutation
/// ([`FaultSchedule::link_fraction`]), so the delivered fraction is
/// monotone non-increasing by construction and the entry asserts it.
/// Surviving traffic reroutes around the failed links at build time
/// (fault-aware Up*/Down*); statically partitioned pairs are written off
/// as unreachable at generation, so even the 100 % row terminates by
/// draining its event queue rather than hanging.
///
/// A second mini-table exercises the *timed* fault path: one fail/repair
/// pulse on a live link mid-run, showing drop → retry-with-backoff →
/// recovery with nothing silently lost.
///
/// The fraction points run concurrently via the runner's [`par_map`].
pub fn degradation(opts: &RunOpts) {
    let spec = small_spec_48();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let base = scaled(
        &SimConfig {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed: 31,
            ..SimConfig::default()
        },
        opts,
    );
    let fractions = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0];
    let runs = par_map(&fractions, |&fraction| {
        let faults = FaultSchedule {
            link_fraction: fraction,
            ..FaultSchedule::default()
        };
        let built =
            BuiltSystem::try_build_with(&spec, wl.flit_bytes, AscentPolicy::default(), &faults)
                .unwrap();
        let cfg = SimConfig {
            faults,
            ..base.clone()
        };
        let failed = built.static_failed().iter().filter(|&&f| f).count();
        (
            failed,
            run_simulation_built(&built, &wl, Pattern::Uniform, &cfg),
        )
    });

    println!("## N=48, M=32, Lm=256 — graceful degradation vs failed-link fraction");
    let mut table = Table::new([
        "failed frac",
        "failed links",
        "latency",
        "delivered frac",
        "unreachable",
        "stop reason",
    ]);
    for (&fraction, (failed, r)) in fractions.iter().zip(&runs) {
        table.push_row([
            format!("{fraction:.2}"),
            failed.to_string(),
            if r.delivered_total > 0 {
                format!("{:.2}", r.latency.mean)
            } else {
                "-".into()
            },
            format!("{:.3}", r.delivered_fraction()),
            r.unreachable.to_string(),
            r.stop.to_string(),
        ]);
    }
    println!("{}", table.render());
    for w in runs.windows(2) {
        assert!(
            w[1].1.delivered_fraction() <= w[0].1.delivered_fraction() + 1e-12,
            "nested fault masks must degrade delivery monotonically"
        );
    }
    for (_, r) in &runs {
        assert_eq!(
            r.generated,
            r.delivered_total + r.unreachable,
            "no message may be silently lost"
        );
    }

    // Timed-fault pulse: fail node 0's injection link at t=0, repair it
    // mid-run. Routing does not know about timed faults, so traffic runs
    // into the dead link and exercises the drop/retry/backoff machinery;
    // after the repair everything still completes.
    let pulse = FaultSchedule {
        events: vec![
            FaultEvent {
                time: 0.0,
                link: node0_injection_link(&spec, &wl),
                action: FaultAction::Fail,
            },
            FaultEvent {
                time: 50_000.0,
                link: node0_injection_link(&spec, &wl),
                action: FaultAction::Repair,
            },
        ],
        max_attempts: 64,
        retry_timeout: 100.0,
        max_timeout: 800.0,
        ..FaultSchedule::default()
    };
    let built =
        BuiltSystem::try_build_with(&spec, wl.flit_bytes, AscentPolicy::default(), &pulse).unwrap();
    let cfg = SimConfig {
        faults: pulse,
        ..base.clone()
    };
    let r = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
    println!("\n## timed fault pulse on node 0's injection link (fail @0, repair @5e4)");
    let mut table = Table::new(["dropped", "retransmits", "unreachable", "delivered frac"]);
    table.push_row([
        r.dropped.to_string(),
        r.retransmits.to_string(),
        r.unreachable.to_string(),
        format!("{:.3}", r.delivered_fraction()),
    ]);
    println!("{}", table.render());
    assert_eq!(
        r.dropped,
        r.retransmits + r.unreachable,
        "every drop is either retried or written off"
    );
    println!(
        "static failures degrade gracefully: surviving pairs reroute around the\n\
         failed links at the cost of longer Up*/Down* detours, partitioned pairs\n\
         are written off deterministically, and even a fully partitioned network\n\
         drains its event queue instead of hanging. Timed faults are invisible\n\
         to routing, so they exercise the message-level retry/backoff path."
    );
}

/// First channel of node 0's interned route to node 1 — a link every
/// uniform-traffic run exercises, used by the timed-fault pulse.
fn node0_injection_link(spec: &SystemSpec, wl: &Workload) -> u32 {
    let built = BuiltSystem::build(spec, wl.flit_bytes);
    let routes = built.route_table();
    let r = routes.route_ref(0, 1);
    let seg = routes.seg_meta(r, 0);
    routes.chan_at(seg.start)
}

/// Scaling study (beyond the paper): how latency and the saturation rate
/// evolve as the system grows, holding the cluster design fixed.
///
/// The paper evaluates two fixed organizations; the analytical model's real
/// value is sweeping a *family* of systems in milliseconds. This entry
/// scales the number of clusters (m=4, homogeneous n=3 clusters of 16
/// nodes, Table 2 networks) through every valid ICN2 size and reports
/// zero-load latency, mid-load latency and the saturation rate — the
/// designer's capacity curve.
pub fn scaling(_opts: &RunOpts) {
    let model_opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    println!("## cluster-count scaling (m=4, uniform n=3 clusters of 16 nodes)");
    let mut table = Table::new([
        "C",
        "N",
        "n_c",
        "latency (λ→0)",
        "latency (λ=sat/2)",
        "saturation rate",
        "aggregate msg/s at sat",
    ]);
    // Valid C for m=4: 2·2^{n_c} = 4, 8, 16, 32, 64.
    for n_c in 1..=5u32 {
        let c = 2 * 2usize.pow(n_c);
        let cluster = ClusterSpec {
            n: 3,
            icn1: presets::net1(),
            ecn1: presets::net2(),
            topology: Default::default(),
        };
        let spec = SystemSpec::new(4, vec![cluster; c], presets::net1()).unwrap();
        let zero = evaluate(&spec, &wl, &model_opts).unwrap().latency;
        let sat = saturation_point(&spec, &wl, &model_opts, 1e-4).unwrap();
        let mid = evaluate(&spec, &wl.with_rate(sat / 2.0), &model_opts)
            .unwrap()
            .latency;
        table.push_row([
            c.to_string(),
            spec.total_nodes().to_string(),
            spec.icn2_height().unwrap().to_string(),
            format!("{zero:.2}"),
            format!("{mid:.2}"),
            format!("{sat:.3e}"),
            format!("{:.3}", sat * spec.total_nodes() as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "per-node sustainable load shrinks as C grows (every outgoing message\n\
         still crosses one concentrator), while aggregate throughput rises\n\
         sublinearly — the fundamental cluster-of-clusters trade-off the\n\
         paper's model makes visible."
    );
}

/// Extension scenario: the first non-tree backend through the whole
/// declarative pipeline — four 4×4 torus clusters (64 nodes) under an
/// m=4 ICN2 tree, dimension-order routing, latency vs load.
///
/// The paper's equations model m-port n-trees only, so the entry is
/// *simulation-only*: the runner reports the coverage gap and skips the
/// analytical series instead of failing. Its JSON twin is committed under
/// `scenarios/torus_sweep.json` and the golden test pins the sweep
/// bit-identical across the serial and cluster-sharded engines on both
/// scheduler backends.
pub fn torus_sweep() -> Scenario {
    let cluster = ClusterSpec {
        // A torus cluster has no tree height; its shape is `dims`.
        n: 0,
        icn1: presets::net1(),
        ecn1: presets::net2(),
        topology: TopoSpec::Torus(TorusShape::new(&[4, 4]).expect("static shape is valid")),
    };
    let spec = SystemSpec::new(4, vec![cluster; 4], presets::net1()).expect("static spec is valid");
    let sim = SimConfig {
        seed: 2006,
        ..SimConfig::default()
    };
    Scenario::new("N=64, 4x 4x4-torus clusters, M=32 (sim only)", spec)
        .with_workload("Lm=256", Workload::new(0.0, 32, 256.0).unwrap())
        .with_grid(3.2e-3, 8)
        .with_sim(sim)
}
