//! Route-interning scale study: build time, resident route-table bytes
//! and simulated events/sec as the endpoint count grows from ~1k to 10^6.
//!
//! The sweep is the motivating experiment behind the class-keyed
//! [`cocnet_sim::RouteTable`]: eager all-pairs interning is quadratic in
//! endpoints (≈10^12 pair entries at a million nodes — unbuildable),
//! while the classed table materializes one record per *touched
//! equivalence class*, so build cost is O(channels) and resident bytes
//! follow the traffic, not the topology. Points small enough for the
//! eager oracle (≤ `EAGER_MAX_NODES` nodes) also build it and report
//! the speedup; the paper's org_1120 must come out ≥ 10× faster classed,
//! which the entry asserts.
//!
//! Usage: `cocnet run org_scale [--quick] [--json]`. `--quick` scales
//! the per-point simulation populations 10× down but still sweeps every
//! org including the 2^20-endpoint one — that point doubling as the CI
//! smoke that the lifted 65535-node cap stays lifted.

use super::{scaled, RunOpts};
use cocnet_model::Workload;
use cocnet_sim::{run_simulation_built, BuiltSystem, FaultSchedule, InternMode, SimConfig};
use cocnet_stats::Table;
use cocnet_topology::{AscentPolicy, ClusterSpec, SystemSpec};
use cocnet_workloads::{presets, Pattern};
use std::time::Instant;

/// Largest org for which the eager all-pairs oracle is also built for
/// the comparison columns (the oracle itself caps at 65 535 nodes, but
/// quadratic build cost makes it pointless well before that).
const EAGER_MAX_NODES: usize = 4_096;

/// A homogeneous m=16 organization: `clusters` clusters of `2·8^n`
/// nodes each on the Table 2 networks. m=16 keeps every tier a valid
/// m-port n-tree while one (m, n) graph is shared across all clusters.
fn mega_org(cluster_n: u32, clusters: usize) -> SystemSpec {
    let cluster = ClusterSpec {
        n: cluster_n,
        icn1: presets::net1(),
        ecn1: presets::net2(),
        topology: Default::default(),
    };
    SystemSpec::new(16, vec![cluster; clusters], presets::net1())
        .expect("static scale orgs are valid")
}

/// The sweep: the paper's org_1120 plus the m=16 family up to 2^20
/// endpoints (16 × 128, 128 × 128, 128 × 1024, 1024 × 1024).
fn sweep() -> Vec<(&'static str, SystemSpec)> {
    vec![
        ("org_1120", presets::org_1120()),
        ("org_2k", mega_org(2, 16)),
        ("org_16k", mega_org(2, 128)),
        ("org_131k", mega_org(3, 128)),
        ("org_1m", mega_org(3, 1024)),
    ]
}

#[derive(serde::Serialize)]
struct Point {
    name: &'static str,
    nodes: usize,
    channels: usize,
    classed_build_ms: f64,
    /// Route-table resident bytes *after* the simulation ran (the classed
    /// table grows with touched classes, so post-run is the honest size).
    classed_bytes: usize,
    eager_build_ms: Option<f64>,
    eager_bytes: Option<usize>,
    events_per_sec: f64,
    delivered: u64,
}

fn human_bytes(b: usize) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}

/// The `org_scale` registry entry.
pub fn org_scale(opts: &RunOpts) {
    let wl = Workload::new(2e-4, 32, 256.0).expect("static workload");
    let base = scaled(
        &SimConfig {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed: 9,
            ..SimConfig::default()
        },
        opts,
    );

    let mut points = Vec::new();
    for (name, spec) in sweep() {
        let start = Instant::now();
        let built = BuiltSystem::try_build_full(
            &spec,
            wl.flit_bytes,
            AscentPolicy::default(),
            &FaultSchedule::default(),
            InternMode::Classed,
        )
        .expect("scale orgs build");
        let classed_build_ms = start.elapsed().as_secs_f64() * 1e3;
        let nodes = built.total_nodes();

        let (eager_build_ms, eager_bytes) = if nodes <= EAGER_MAX_NODES {
            let start = Instant::now();
            let eager = BuiltSystem::try_build_full(
                &spec,
                wl.flit_bytes,
                AscentPolicy::default(),
                &FaultSchedule::default(),
                InternMode::Eager,
            )
            .expect("scale orgs build eagerly");
            (
                Some(start.elapsed().as_secs_f64() * 1e3),
                Some(eager.route_table().resident_bytes()),
            )
        } else {
            (None, None)
        };

        let start = Instant::now();
        let r = run_simulation_built(&built, &wl, Pattern::Uniform, &base);
        let wall = start.elapsed().as_secs_f64();
        assert!(r.completed, "{name}: scale sweep run must complete");
        eprintln!(
            "[{name}: {nodes} nodes, build {classed_build_ms:.1} ms, \
             {:.0} events/s]",
            r.events_processed as f64 / wall
        );
        points.push(Point {
            name,
            nodes,
            channels: built.num_channels(),
            classed_build_ms,
            classed_bytes: built.route_table().resident_bytes(),
            eager_build_ms,
            eager_bytes,
            events_per_sec: r.events_processed as f64 / wall,
            delivered: r.delivered_total,
        });
    }

    println!("## Route interning at scale — classed (lazy, default) vs eager oracle");
    let mut table = Table::new([
        "org",
        "nodes",
        "channels",
        "build ms",
        "table bytes",
        "eager ms",
        "eager bytes",
        "events/s",
    ]);
    for p in &points {
        table.push_row([
            p.name.to_string(),
            p.nodes.to_string(),
            p.channels.to_string(),
            format!("{:.1}", p.classed_build_ms),
            human_bytes(p.classed_bytes),
            p.eager_build_ms
                .map_or("-".to_string(), |ms| format!("{ms:.1}")),
            p.eager_bytes.map_or("-".to_string(), human_bytes),
            format!("{:.0}", p.events_per_sec),
        ]);
    }
    println!("{}", table.render());
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&points).expect("rows serialize")
        );
    }

    for p in &points {
        assert!(p.delivered > 0, "{}: sweep point delivered nothing", p.name);
    }
    let million = points
        .iter()
        .find(|p| p.nodes >= 1 << 20)
        .expect("2^20 point");
    assert!(
        million.classed_build_ms < 10_000.0,
        "a 2^20-endpoint org must build in single-digit seconds \
         (took {:.0} ms)",
        million.classed_build_ms
    );
    let org1120 = &points[0];
    let (eager_ms, classed_ms) = (
        org1120.eager_build_ms.expect("org_1120 runs the oracle"),
        org1120.classed_build_ms,
    );
    assert!(
        eager_ms >= 10.0 * classed_ms,
        "org_1120 classed build must be >= 10x faster than eager \
         (eager {eager_ms:.2} ms vs classed {classed_ms:.2} ms)"
    );
    eprintln!(
        "[org_scale: ok — org_1120 classed build {classed_ms:.2} ms vs eager \
         {eager_ms:.2} ms ({:.0}x), 2^20-endpoint build {:.0} ms]",
        eager_ms / classed_ms,
        million.classed_build_ms
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_orgs_hit_their_nominal_node_counts() {
        let expected = [1120, 2048, 16384, 131072, 1048576];
        for ((name, spec), want) in sweep().into_iter().zip(expected) {
            assert_eq!(spec.total_nodes(), want, "{name}");
        }
    }
}
