//! Poisson message generation (paper assumption 1).
//!
//! Each node generates messages independently by a Poisson process of rate
//! `λ_g`; inter-arrival gaps are exponential, sampled by inverse transform
//! so the only dependency is a uniform RNG.

use rand::Rng;

/// Samples an exponential inter-arrival gap with the given `rate` via
/// inverse transform: `−ln(1 − U)/rate` with `U ∈ [0, 1)`.
///
/// # Panics
/// Panics if `rate` is not finite and positive.
pub fn exponential_sample<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// A per-node Poisson arrival stream: yields successive absolute arrival
/// times starting from `t = 0`.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate: f64,
    now: f64,
}

impl PoissonArrivals {
    /// Creates a stream with the given rate (messages per time unit).
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { rate, now: 0.0 }
    }

    /// The generation rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Advances the stream and returns the next absolute arrival time.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.now += exponential_sample(rng, self.rate);
        self.now
    }
}

/// An interrupted-Poisson (on/off) arrival stream: exponentially
/// distributed ON periods generating Poisson arrivals at `rate_on`,
/// separated by silent exponentially distributed OFF periods.
///
/// With duty cycle `d = mean_on/(mean_on + mean_off)` the long-run mean
/// rate is `rate_on·d`; holding the mean rate fixed while shrinking `d`
/// makes the stream burstier — the time-domain counterpart of the paper's
/// "non-uniform traffic" future work.
#[derive(Debug, Clone)]
pub struct OnOffArrivals {
    rate_on: f64,
    mean_on: f64,
    mean_off: f64,
    now: f64,
    phase_end: f64,
    on: bool,
}

impl OnOffArrivals {
    /// Creates a stream; all parameters must be positive and finite.
    pub fn new(rate_on: f64, mean_on: f64, mean_off: f64) -> Self {
        assert!(
            rate_on.is_finite() && rate_on > 0.0,
            "rate_on must be positive"
        );
        assert!(
            mean_on.is_finite() && mean_on > 0.0,
            "mean_on must be positive"
        );
        assert!(
            mean_off.is_finite() && mean_off > 0.0,
            "mean_off must be positive"
        );
        Self {
            rate_on,
            mean_on,
            mean_off,
            now: 0.0,
            // The first ON period is entered lazily at t=0 with length 0 so
            // the phase sequence starts with a sampled OFF or ON fairly;
            // simplest unbiased start: begin ON with a fresh period.
            phase_end: 0.0,
            on: false,
        }
    }

    /// Long-run mean arrival rate `rate_on · mean_on/(mean_on + mean_off)`.
    pub fn mean_rate(&self) -> f64 {
        self.rate_on * self.mean_on / (self.mean_on + self.mean_off)
    }

    /// Advances the stream and returns the next absolute arrival time.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        loop {
            if self.now >= self.phase_end {
                // Switch phase.
                self.on = !self.on;
                let len = if self.on {
                    exponential_sample(rng, 1.0 / self.mean_on)
                } else {
                    exponential_sample(rng, 1.0 / self.mean_off)
                };
                self.phase_end = self.now + len;
                continue;
            }
            if !self.on {
                self.now = self.phase_end;
                continue;
            }
            let candidate = self.now + exponential_sample(rng, self.rate_on);
            if candidate <= self.phase_end {
                self.now = candidate;
                return candidate;
            }
            // The ON period ended before the next arrival.
            self.now = self.phase_end;
        }
    }
}

/// Specification of a per-node arrival process (buildable per node so each
/// node owns independent phase state).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(deny_unknown_fields)]
pub enum ArrivalSpec {
    /// Plain Poisson at the given rate (the paper's assumption 1).
    Poisson {
        /// Messages per time unit.
        rate: f64,
    },
    /// Interrupted Poisson: `rate_on` during exponentially distributed ON
    /// periods of mean `mean_on`, silent for OFF periods of mean `mean_off`.
    OnOff {
        /// Rate while ON.
        rate_on: f64,
        /// Mean ON-period length.
        mean_on: f64,
        /// Mean OFF-period length.
        mean_off: f64,
    },
}

impl ArrivalSpec {
    /// Long-run mean rate.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate } => rate,
            ArrivalSpec::OnOff {
                rate_on,
                mean_on,
                mean_off,
            } => rate_on * mean_on / (mean_on + mean_off),
        }
    }

    /// An on/off spec with the same mean rate as `rate` but the given duty
    /// cycle `d ∈ (0, 1]` and mean burst length (in messages).
    pub fn bursty(rate: f64, duty: f64, burst_messages: f64) -> Self {
        assert!((0.0..=1.0).contains(&duty) && duty > 0.0);
        if (duty - 1.0).abs() < f64::EPSILON {
            return ArrivalSpec::Poisson { rate };
        }
        let rate_on = rate / duty;
        let mean_on = burst_messages / rate_on;
        let mean_off = mean_on * (1.0 - duty) / duty;
        ArrivalSpec::OnOff {
            rate_on,
            mean_on,
            mean_off,
        }
    }

    /// Builds the runtime process.
    pub fn build(&self) -> ArrivalProcess {
        match *self {
            ArrivalSpec::Poisson { rate } => ArrivalProcess::Poisson(PoissonArrivals::new(rate)),
            ArrivalSpec::OnOff {
                rate_on,
                mean_on,
                mean_off,
            } => ArrivalProcess::OnOff(OnOffArrivals::new(rate_on, mean_on, mean_off)),
        }
    }
}

/// A runtime arrival process (one per node).
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Plain Poisson.
    Poisson(PoissonArrivals),
    /// Interrupted Poisson.
    OnOff(OnOffArrivals),
}

impl ArrivalProcess {
    /// Advances the stream and returns the next absolute arrival time.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        match self {
            ArrivalProcess::Poisson(p) => p.next_arrival(rng),
            ArrivalProcess::OnOff(p) => p.next_arrival(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaps_are_positive_and_increasing() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = PoissonArrivals::new(0.5);
        let mut last = 0.0;
        for _ in 0..1000 {
            let t = s.next_arrival(&mut rng);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn mean_gap_matches_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let rate = 0.25;
        let n = 200_000;
        let mut s = PoissonArrivals::new(rate);
        let mut last = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = s.next_arrival(&mut rng);
            sum += t - last;
            last = t;
        }
        let mean = sum / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean gap {mean} vs expected {expected}"
        );
    }

    #[test]
    fn exponential_variance_matches() {
        // Var = 1/rate² for the exponential distribution.
        let mut rng = StdRng::seed_from_u64(3);
        let rate = 2.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| exponential_sample(&mut rng, rate)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 0.25).abs() < 0.01, "variance {var} vs 0.25");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut sa = PoissonArrivals::new(1.0);
        let mut sb = PoissonArrivals::new(1.0);
        for _ in 0..100 {
            assert_eq!(sa.next_arrival(&mut a), sb.next_arrival(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        PoissonArrivals::new(0.0);
    }

    #[test]
    fn onoff_mean_rate_matches_construction() {
        let spec = ArrivalSpec::bursty(1e-3, 0.25, 10.0);
        assert!((spec.mean_rate() - 1e-3).abs() < 1e-12);
        let ArrivalSpec::OnOff { rate_on, .. } = spec else {
            panic!("duty < 1 must build an on/off spec");
        };
        assert!((rate_on - 4e-3).abs() < 1e-12);
        // Duty 1.0 degenerates to Poisson.
        assert!(matches!(
            ArrivalSpec::bursty(1e-3, 1.0, 10.0),
            ArrivalSpec::Poisson { .. }
        ));
    }

    #[test]
    fn onoff_empirical_rate_converges() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut p = OnOffArrivals::new(4e-3, 2_500.0, 7_500.0);
        assert!((p.mean_rate() - 1e-3).abs() < 1e-12);
        let n = 100_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = p.next_arrival(&mut rng);
        }
        let empirical = n as f64 / last;
        assert!(
            (empirical - 1e-3).abs() / 1e-3 < 0.05,
            "empirical rate {empirical}"
        );
    }

    #[test]
    fn onoff_arrivals_strictly_increase() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = OnOffArrivals::new(0.1, 50.0, 200.0);
        let mut last = 0.0;
        for _ in 0..5_000 {
            let t = p.next_arrival(&mut rng);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn onoff_is_burstier_than_poisson() {
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, > 1 for the interrupted process at the same mean rate.
        let mut rng = StdRng::seed_from_u64(8);
        let cv2 = |mut next: Box<dyn FnMut(&mut StdRng) -> f64>, rng: &mut StdRng| {
            let n = 50_000;
            let mut last = 0.0;
            let mut gaps = Vec::with_capacity(n);
            for _ in 0..n {
                let t = next(rng);
                gaps.push(t - last);
                last = t;
            }
            let mean = gaps.iter().sum::<f64>() / n as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n as f64;
            var / (mean * mean)
        };
        let mut poisson = PoissonArrivals::new(1e-3);
        let cv2_p = cv2(Box::new(move |r| poisson.next_arrival(r)), &mut rng);
        let mut onoff = OnOffArrivals::new(1e-2, 1_000.0, 9_000.0);
        let cv2_b = cv2(Box::new(move |r| onoff.next_arrival(r)), &mut rng);
        assert!((cv2_p - 1.0).abs() < 0.1, "poisson cv² {cv2_p}");
        assert!(cv2_b > 2.0, "on/off cv² {cv2_b}");
    }

    #[test]
    fn arrival_process_enum_dispatch() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = ArrivalSpec::Poisson { rate: 0.5 }.build();
        let mut b = ArrivalSpec::bursty(0.5, 0.5, 5.0).build();
        assert!(p.next_arrival(&mut rng) > 0.0);
        assert!(b.next_arrival(&mut rng) > 0.0);
    }
}
