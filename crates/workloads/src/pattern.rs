//! Destination traffic patterns.
//!
//! The paper validates under the uniform pattern (assumption 2) and names
//! non-uniform traffic as future work (§5); [`Pattern`] provides the
//! uniform pattern plus two standard non-uniform ones so the simulator can
//! explore that direction: a hotspot pattern (a fraction of traffic targets
//! one node) and a cluster-local pattern (a tunable probability of staying
//! inside the source cluster).

use cocnet_topology::SystemSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A destination distribution over the system's nodes (flat indexing;
/// cluster `i` owns indices `offset(i)..offset(i)+N_i`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub enum Pattern {
    /// Uniform over all nodes except the source (paper assumption 2).
    #[default]
    Uniform,
    /// With probability `fraction`, target `hotspot`; otherwise uniform.
    /// The source never targets itself (falls back to uniform if it *is*
    /// the hotspot).
    Hotspot {
        /// Flat index of the hotspot node.
        hotspot: usize,
        /// Probability of targeting the hotspot.
        fraction: f64,
    },
    /// With probability `locality`, uniform inside the source's own
    /// cluster; otherwise uniform over the other clusters' nodes.
    ClusterLocal {
        /// Probability of an intra-cluster destination.
        locality: f64,
    },
    /// Deterministic cluster permutation: every message goes to the node
    /// with the same local index (modulo destination size) in cluster
    /// `(i + shift) mod C` — a "ring shift" permutation that exercises the
    /// inter-cluster path with zero destination entropy (an adversarial
    /// counterpoint to assumption 2).
    ClusterShift {
        /// How many clusters ahead the destination cluster lies (1..C).
        shift: usize,
    },
    /// Bit-reversal-like pairing: node `x` sends to node `N−1−x` (itself
    /// shifted by one when that would self-target). A classic permutation
    /// stressor: half the traffic crosses the whole system.
    Complement,
}

impl Pattern {
    /// Samples a destination for a message generated at flat node `src`.
    /// Always returns a node different from `src`.
    pub fn sample<R: Rng + ?Sized>(&self, spec: &SystemSpec, src: usize, rng: &mut R) -> usize {
        let total = spec.total_nodes();
        debug_assert!(src < total);
        match *self {
            Pattern::Uniform => uniform_excluding(total, src, rng),
            Pattern::Hotspot { hotspot, fraction } => {
                debug_assert!((0.0..=1.0).contains(&fraction));
                if hotspot != src && rng.random::<f64>() < fraction {
                    hotspot
                } else {
                    uniform_excluding(total, src, rng)
                }
            }
            Pattern::ClusterLocal { locality } => {
                debug_assert!((0.0..=1.0).contains(&locality));
                let (cluster, _) = spec.locate_node(src).expect("src in range");
                let off = spec.node_offset(cluster);
                let size = spec.cluster_nodes(cluster);
                let stay = size > 1 && rng.random::<f64>() < locality;
                if stay {
                    off + uniform_excluding(size, src - off, rng)
                } else {
                    // Uniform over nodes outside the source cluster.
                    let outside = total - size;
                    debug_assert!(outside > 0);
                    let pick = rng.random_range(0..outside);
                    if pick < off {
                        pick
                    } else {
                        pick + size
                    }
                }
            }
            Pattern::ClusterShift { shift } => {
                let c = spec.num_clusters();
                debug_assert!(shift % c != 0, "shift must leave the cluster");
                let (cluster, local) = spec.locate_node(src).expect("src in range");
                let dest_cluster = (cluster + shift) % c;
                let dest_size = spec.cluster_nodes(dest_cluster);
                spec.node_offset(dest_cluster) + local % dest_size
            }
            Pattern::Complement => {
                let mirror = total - 1 - src;
                if mirror == src {
                    // Odd-sized systems cannot occur (N is even for every
                    // m-port n-tree), but stay safe.
                    (src + 1) % total
                } else {
                    mirror
                }
            }
        }
    }

    /// Effective probability that a message from cluster `i` leaves its
    /// cluster under this pattern — generalises Eq. (2) so the analytical
    /// model can be evaluated under non-uniform traffic (hotspot traffic is
    /// approximated by conditioning on the hotspot's cluster).
    pub fn outgoing_probability(&self, spec: &SystemSpec, i: usize) -> f64 {
        let uniform_u = spec.outgoing_probability(i);
        match *self {
            Pattern::Uniform => uniform_u,
            Pattern::Hotspot { hotspot, fraction } => {
                let (hc, _) = spec.locate_node(hotspot).expect("hotspot in range");
                let hot_out = if hc == i { 0.0 } else { 1.0 };
                fraction * hot_out + (1.0 - fraction) * uniform_u
            }
            Pattern::ClusterLocal { locality } => {
                // With probability `locality` the message stays home.
                (1.0 - locality).clamp(0.0, 1.0)
            }
            // Every shifted message leaves its cluster.
            Pattern::ClusterShift { .. } => 1.0,
            Pattern::Complement => {
                // A node's complement lies in its own cluster only when the
                // cluster straddles the centre of the flat index range.
                let off = spec.node_offset(i);
                let size = spec.cluster_nodes(i);
                let total = spec.total_nodes();
                let inside = (off..off + size)
                    .filter(|&x| {
                        let mirror = total - 1 - x;
                        (off..off + size).contains(&mirror)
                    })
                    .count();
                1.0 - inside as f64 / size as f64
            }
        }
    }
}

/// Uniform sample over `0..n` excluding `excluded`.
fn uniform_excluding<R: Rng + ?Sized>(n: usize, excluded: usize, rng: &mut R) -> usize {
    debug_assert!(n >= 2, "need at least one other node");
    let pick = rng.random_range(0..n - 1);
    if pick >= excluded {
        pick + 1
    } else {
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> SystemSpec {
        let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let c = |n| ClusterSpec {
            n,
            icn1: net,
            ecn1: net,
            topology: Default::default(),
        };
        // m=4, C=4 clusters: 4+4+8+8 = 24 nodes.
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net).unwrap()
    }

    #[test]
    fn uniform_never_self_and_covers_all() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = vec![false; s.total_nodes()];
        for _ in 0..5000 {
            let d = Pattern::Uniform.sample(&s, 3, &mut rng);
            assert_ne!(d, 3);
            seen[d] = true;
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert_eq!(covered, s.total_nodes() - 1);
    }

    #[test]
    fn uniform_is_actually_uniform() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(11);
        let n = s.total_nodes();
        let trials = 100_000;
        let mut counts = vec![0u32; n];
        for _ in 0..trials {
            counts[Pattern::Uniform.sample(&s, 0, &mut rng)] += 1;
        }
        let expected = trials as f64 / (n - 1) as f64;
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "node {i}: count {c} vs {expected}");
        }
    }

    #[test]
    fn hotspot_receives_requested_fraction() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(2);
        let p = Pattern::Hotspot {
            hotspot: 10,
            fraction: 0.5,
        };
        let trials = 50_000;
        let hits = (0..trials)
            .filter(|_| p.sample(&s, 0, &mut rng) == 10)
            .count();
        let rate = hits as f64 / trials as f64;
        // 0.5 direct + (0.5)·1/23 uniform residue ≈ 0.5217.
        assert!((rate - 0.52).abs() < 0.02, "hotspot rate {rate}");
    }

    #[test]
    fn hotspot_source_does_not_self_target() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(9);
        let p = Pattern::Hotspot {
            hotspot: 4,
            fraction: 1.0,
        };
        for _ in 0..1000 {
            assert_ne!(p.sample(&s, 4, &mut rng), 4);
        }
    }

    #[test]
    fn cluster_local_respects_locality() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(4);
        let p = Pattern::ClusterLocal { locality: 0.9 };
        // Source in cluster 2 (nodes 8..16).
        let trials = 20_000;
        let local = (0..trials)
            .filter(|_| {
                let d = p.sample(&s, 9, &mut rng);
                (8..16).contains(&d)
            })
            .count();
        let rate = local as f64 / trials as f64;
        assert!((rate - 0.9).abs() < 0.02, "local rate {rate}");
    }

    #[test]
    fn cluster_local_zero_always_leaves() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(8);
        let p = Pattern::ClusterLocal { locality: 0.0 };
        for _ in 0..1000 {
            let d = p.sample(&s, 0, &mut rng);
            assert!(d >= 4, "node 0 is in cluster 0 (nodes 0..4), got {d}");
        }
    }

    #[test]
    fn outgoing_probability_consistency() {
        let s = spec();
        // Uniform matches Eq. (2).
        assert_eq!(
            Pattern::Uniform.outgoing_probability(&s, 1),
            s.outgoing_probability(1)
        );
        // Full locality never leaves.
        let local = Pattern::ClusterLocal { locality: 1.0 };
        assert_eq!(local.outgoing_probability(&s, 0), 0.0);
        // A hotspot in another cluster raises the outgoing share.
        let hot = Pattern::Hotspot {
            hotspot: 20,
            fraction: 0.8,
        };
        assert!(hot.outgoing_probability(&s, 0) > s.outgoing_probability(0));
    }

    #[test]
    fn cluster_shift_is_deterministic_and_leaves() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pattern::ClusterShift { shift: 1 };
        // Node 0 (cluster 0, local 0) -> cluster 1's local 0 = node 4.
        assert_eq!(p.sample(&s, 0, &mut rng), 4);
        // Node 9 (cluster 2, local 1) -> cluster 3's local 1 = node 17.
        assert_eq!(p.sample(&s, 9, &mut rng), 17);
        // Local index folds modulo the destination size: node 15
        // (cluster 2, local 7) -> cluster 3 local 7 = node 23.
        assert_eq!(p.sample(&s, 15, &mut rng), 23);
        assert_eq!(p.outgoing_probability(&s, 0), 1.0);
    }

    #[test]
    fn cluster_shift_wraps_and_folds() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pattern::ClusterShift { shift: 3 };
        // Node 20 (cluster 3, local 4) -> cluster 2 (wrap) local 4 = 12.
        assert_eq!(p.sample(&s, 20, &mut rng), 12);
        // Cluster 3 local 5 -> cluster (3+3)%4=2: node 8+5=13.
        assert_eq!(p.sample(&s, 21, &mut rng), 13);
        // Folding: cluster 2 local 7 -> cluster 1 (size 4): local 7%4=3.
        let p1 = Pattern::ClusterShift { shift: 3 };
        assert_eq!(p1.sample(&s, 15, &mut rng), s.node_offset(1) + 3);
    }

    #[test]
    fn complement_is_an_involution_without_fixpoints() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(1);
        let total = s.total_nodes();
        for src in 0..total {
            let d = Pattern::Complement.sample(&s, src, &mut rng);
            assert_ne!(d, src);
            let back = Pattern::Complement.sample(&s, d, &mut rng);
            assert_eq!(back, src, "complement must be an involution");
        }
    }

    #[test]
    fn complement_outgoing_probability_matches_empirical() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..s.num_clusters() {
            let off = s.node_offset(i);
            let size = s.cluster_nodes(i);
            let out = (off..off + size)
                .filter(|&x| {
                    let d = Pattern::Complement.sample(&s, x, &mut rng);
                    s.locate_node(d).unwrap().0 != i
                })
                .count();
            let predicted = Pattern::Complement.outgoing_probability(&s, i);
            assert!((predicted - out as f64 / size as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_outgoing_matches_prediction() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(13);
        for pattern in [Pattern::Uniform, Pattern::ClusterLocal { locality: 0.7 }] {
            let src = 9; // cluster 2
            let trials = 50_000;
            let out = (0..trials)
                .filter(|_| {
                    let d = pattern.sample(&s, src, &mut rng);
                    !(8..16).contains(&d)
                })
                .count();
            let rate = out as f64 / trials as f64;
            let predicted = pattern.outgoing_probability(&s, 2);
            assert!(
                (rate - predicted).abs() < 0.02,
                "{pattern:?}: empirical {rate} vs predicted {predicted}"
            );
        }
    }
}
