//! The paper's validation configurations: Table 1 (system organizations),
//! Table 2 (network characteristics), and the workloads of Figs. 3–7.
//!
//! "The ICN1 and ICN2 networks used the Net.1 while the ECN1 networks used
//! the Net.2 configuration" (§4).

use cocnet_model::Workload;
use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};

/// Table 2, Net.1: bandwidth 500, network latency 0.01, switch latency 0.02.
pub fn net1() -> NetworkCharacteristics {
    NetworkCharacteristics::new(500.0, 0.01, 0.02).expect("static parameters are valid")
}

/// Table 2, Net.2: bandwidth 250, network latency 0.05, switch latency 0.01.
pub fn net2() -> NetworkCharacteristics {
    NetworkCharacteristics::new(250.0, 0.05, 0.01).expect("static parameters are valid")
}

fn organization(m: u32, heights: &[(u32, usize)]) -> SystemSpec {
    let clusters: Vec<ClusterSpec> = heights
        .iter()
        .flat_map(|&(n, count)| {
            std::iter::repeat_n(
                ClusterSpec {
                    n,
                    icn1: net1(),
                    ecn1: net2(),
                    topology: Default::default(),
                },
                count,
            )
        })
        .collect();
    SystemSpec::new(m, clusters, net1()).expect("paper organizations are valid")
}

/// Table 1, row 1: `N = 1120`, `C = 32`, `m = 8`; clusters 0–11 have
/// `n_i = 1`, clusters 12–27 have `n_i = 2`, clusters 28–31 have `n_i = 3`.
pub fn org_1120() -> SystemSpec {
    organization(8, &[(1, 12), (2, 16), (3, 4)])
}

/// Table 1, row 2: `N = 544`, `C = 16`, `m = 4`; clusters 0–7 have
/// `n_i = 3`, clusters 8–10 have `n_i = 4`, clusters 11–15 have `n_i = 5`.
pub fn org_544() -> SystemSpec {
    organization(4, &[(3, 8), (4, 3), (5, 5)])
}

/// The Fig. 7 variant of an organization: ICN2 bandwidth raised by 20 %.
pub fn with_boosted_icn2(spec: &SystemSpec, factor: f64) -> SystemSpec {
    SystemSpec::new(
        spec.m,
        spec.clusters.clone(),
        spec.icn2.scale_bandwidth(factor),
    )
    .expect("scaling bandwidth keeps the spec valid")
}

/// Workload of Figs. 3 and 5: `M = 32` flits of 256 bytes (λ set per sweep).
pub fn wl_m32_l256() -> Workload {
    Workload::new(0.0, 32, 256.0).expect("static parameters are valid")
}

/// Workload variant with 512-byte flits (the figures' `Lm=512` series).
pub fn wl_m32_l512() -> Workload {
    Workload::new(0.0, 32, 512.0).expect("static parameters are valid")
}

/// Workload of Figs. 4 and 6: `M = 64` flits of 256 bytes.
pub fn wl_m64_l256() -> Workload {
    Workload::new(0.0, 64, 256.0).expect("static parameters are valid")
}

/// `M = 64` flits of 512 bytes.
pub fn wl_m64_l512() -> Workload {
    Workload::new(0.0, 64, 512.0).expect("static parameters are valid")
}

/// Workload of Fig. 7: `M = 128` flits of 256 bytes.
pub fn wl_m128_l256() -> Workload {
    Workload::new(0.0, 128, 256.0).expect("static parameters are valid")
}

/// The x-axis ranges of the paper's figures (traffic generation rate λ_g).
pub mod rates {
    /// Fig. 3 (N=1120, M=32): 0 → 5·10⁻⁴.
    pub const FIG3_MAX: f64 = 5e-4;
    /// Fig. 4 (N=1120, M=64): 0 → 2.5·10⁻⁴.
    pub const FIG4_MAX: f64 = 2.5e-4;
    /// Fig. 5 (N=544, M=32): 0 → 1·10⁻³.
    pub const FIG5_MAX: f64 = 1e-3;
    /// Fig. 6 (N=544, M=64): 0 → 5·10⁻⁴.
    pub const FIG6_MAX: f64 = 5e-4;
    /// Fig. 7 (M=128, ICN2 +20 %): 0 → 3·10⁻⁴.
    pub const FIG7_MAX: f64 = 3e-4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organizations_match_table1() {
        let s = org_1120();
        assert_eq!(s.num_clusters(), 32);
        assert_eq!(s.m, 8);
        assert_eq!(s.total_nodes(), 1120);
        assert_eq!(s.clusters[0].n, 1);
        assert_eq!(s.clusters[11].n, 1);
        assert_eq!(s.clusters[12].n, 2);
        assert_eq!(s.clusters[27].n, 2);
        assert_eq!(s.clusters[28].n, 3);
        assert_eq!(s.clusters[31].n, 3);
        assert_eq!(s.icn2_height().unwrap(), 2);

        let s = org_544();
        assert_eq!(s.num_clusters(), 16);
        assert_eq!(s.m, 4);
        assert_eq!(s.total_nodes(), 544);
        assert_eq!(s.clusters[7].n, 3);
        assert_eq!(s.clusters[8].n, 4);
        assert_eq!(s.clusters[10].n, 4);
        assert_eq!(s.clusters[11].n, 5);
        assert_eq!(s.icn2_height().unwrap(), 3);
    }

    #[test]
    fn networks_match_table2() {
        assert_eq!(net1().bandwidth, 500.0);
        assert_eq!(net1().network_latency, 0.01);
        assert_eq!(net1().switch_latency, 0.02);
        assert_eq!(net2().bandwidth, 250.0);
        assert_eq!(net2().network_latency, 0.05);
        assert_eq!(net2().switch_latency, 0.01);
        // Wiring: ICN1/ICN2 use Net.1, ECN1 uses Net.2.
        let s = org_1120();
        assert_eq!(s.clusters[0].icn1, net1());
        assert_eq!(s.clusters[0].ecn1, net2());
        assert_eq!(s.icn2, net1());
    }

    #[test]
    fn boosted_icn2_only_changes_icn2() {
        let base = org_544();
        let boosted = with_boosted_icn2(&base, 1.2);
        assert_eq!(boosted.icn2.bandwidth, 600.0);
        assert_eq!(boosted.clusters, base.clusters);
        assert_eq!(boosted.icn2.network_latency, base.icn2.network_latency);
    }

    #[test]
    fn workload_presets() {
        assert_eq!(wl_m32_l256().msg_flits, 32);
        assert_eq!(wl_m32_l256().flit_bytes, 256.0);
        assert_eq!(wl_m32_l512().flit_bytes, 512.0);
        assert_eq!(wl_m64_l256().msg_flits, 64);
        assert_eq!(wl_m64_l512().msg_flits, 64);
        assert_eq!(wl_m128_l256().msg_flits, 128);
    }
}
