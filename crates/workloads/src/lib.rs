//! Traffic workloads and paper-validation presets.
//!
//! * [`pattern::Pattern`] — destination distributions: the paper's uniform
//!   pattern (assumption 2) plus the hotspot and cluster-local patterns the
//!   paper names as future work (§5).
//! * [`arrival::PoissonArrivals`] — per-node Poisson generation (assumption 1).
//! * [`presets`] — the exact system organizations of Table 1, the network
//!   characteristics of Table 2, and the message configurations used by
//!   Figs. 3–7.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arrival;
pub mod pattern;
pub mod presets;

pub use arrival::{
    exponential_sample, ArrivalProcess, ArrivalSpec, OnOffArrivals, PoissonArrivals,
};
pub use pattern::Pattern;
