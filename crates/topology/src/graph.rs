//! Explicit channel-level wiring of an m-port n-tree with deterministic
//! Up*/Down* routing.
//!
//! The [`Graph`] materialises every directed channel of a tree so the
//! discrete-event simulator can model per-channel contention (assumption 6:
//! input-buffered switches, one flit buffer per channel). Routes follow the
//! paper's deterministic Up*/Down* scheme (refs \[19, 20\]): ascend to a
//! nearest common ancestor, then descend. The ascent's up-port choice is a
//! fixed function of the addresses, making the path unique per
//! (source, destination) pair — deterministic routing, as in most cluster
//! interconnect technologies (paper §2).
//!
//! Channels are allocated so that the two directions of one physical link
//! get consecutive ids; [`Graph::reverse`] is therefore just `id ^ 1`.

use crate::error::TopologyError;
use crate::labels::{NodeLabel, SwitchLabel};
use crate::tree::MPortNTree;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One directed channel (graph edge) of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

/// What kind of connection a channel realises; determines whether the
/// node↔switch (`t_cn`) or switch↔switch (`t_cs`) service time applies
/// (Eqs. (11)–(12)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Injection channel: processing node into its leaf switch.
    NodeToSwitch,
    /// Internal channel between two switches (either direction).
    SwitchToSwitch,
    /// Ejection channel: leaf switch down to a processing node.
    SwitchToNode,
}

/// A vertex of the network graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// Processing node, by node id.
    Node(u32),
    /// Switch, by dense switch index (see [`Graph::switch_label`]).
    Switch(u32),
}

/// Descriptor of one directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelDesc {
    /// Source endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Connection kind (service-time class).
    pub kind: ChannelKind,
}

/// A routed path: the ordered channels a message's header traverses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Channels in traversal order.
    pub channels: Vec<ChannelId>,
    /// NCA level of the journey (`h`); `channels.len() == 2h` for
    /// node-to-node routes.
    pub nca_level: u32,
}

/// How the Up*/Down* ascent picks its up-port at each level.
///
/// Both policies are deterministic per (source, destination); they differ
/// in how traffic toward a *skewed* destination distribution spreads over
/// the parallel ancestors (see DESIGN.md §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AscentPolicy {
    /// Read the shaping label's trailing digits (`p_n` first) — Lin's
    /// multiple-LID / d-mod-k flavour. Destinations that share a subtree
    /// (and therefore their descent digits) still fan out across different
    /// roots: balanced under skewed traffic. The default.
    #[default]
    TrailingDigits,
    /// Mirror the descent digits (`p_{n-1}` first, folded into `m/2` by a
    /// modulo). Simple, but every message toward the same subtree climbs
    /// through the same ancestors — a root hot-spot under skewed traffic.
    /// Kept as the `ablation_routing` baseline.
    MirrorDescent,
}

/// A set of failed channels of one [`Graph`].
///
/// Faults model *physical* link failures: the two directions of a link
/// always fail (and repair) in tandem, so `is_failed(c)` equals
/// `is_failed(reverse(c))` by construction. Channels are identified by the
/// graph-local [`ChannelId`]; the pairing relies on the graph's invariant
/// that a link's two directions occupy consecutive ids (`reverse == id ^ 1`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    failed: std::collections::HashSet<u32>,
}

impl FaultSet {
    /// An empty (fault-free) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the physical link carrying `id` as failed — both directions.
    pub fn fail_link(&mut self, id: ChannelId) {
        self.failed.insert(id.0);
        self.failed.insert(id.0 ^ 1);
    }

    /// Repairs the physical link carrying `id` — both directions.
    pub fn repair_link(&mut self, id: ChannelId) {
        self.failed.remove(&id.0);
        self.failed.remove(&(id.0 ^ 1));
    }

    /// Fails every link incident to switch `sw` of `graph` (a dead switch:
    /// nothing can enter or leave it).
    pub fn fail_switch(&mut self, graph: &Graph, sw: u32) {
        for i in 0..graph.num_channels() {
            let id = ChannelId(i as u32);
            let ch = graph.channel(id);
            if ch.from == Endpoint::Switch(sw) || ch.to == Endpoint::Switch(sw) {
                self.fail_link(id);
            }
        }
    }

    /// Whether channel `id` is currently failed.
    pub fn is_failed(&self, id: ChannelId) -> bool {
        self.failed.contains(&id.0)
    }

    /// Whether no channel is failed (the routing fast path).
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Number of failed *directed* channels (twice the failed link count).
    pub fn len(&self) -> usize {
        self.failed.len()
    }
}

/// Shared inputs of the fault-avoiding DFS helpers
/// ([`Graph::search_avoiding`] / [`Graph::descend_avoiding`]), bundled so
/// the recursion carries one reference instead of six arguments.
struct AvoidCtx<'a> {
    /// Label shaping the preferred ascent digits — the destination label
    /// for node-to-node routes, the source label for to-root routes. Also
    /// supplies the descent digits (node-to-node only).
    shape: &'a NodeLabel,
    policy: AscentPolicy,
    faults: &'a FaultSet,
    n: u32,
    /// Level the ascent must reach before descending (node-to-node) or
    /// terminating (to-root).
    target: u32,
    /// Destination node of the descent; `None` for to-root routes.
    dst: Option<u32>,
}

/// An m-port n-tree with all channels materialised.
///
/// Routing lives on the [`crate::topo::Topology`] trait (and its
/// consolidated [`crate::topo::RouteQuery`] entrypoint), which this type
/// implements. The historical inherent `route*` methods remain as
/// `#[doc(hidden)]` wrappers of the same code paths so downstream callers
/// and the bit-identity goldens are untouched.
#[derive(Debug, Clone)]
pub struct Graph {
    tree: MPortNTree,
    switch_labels: Vec<SwitchLabel>,
    switch_index: HashMap<SwitchLabel, u32>,
    channels: Vec<ChannelDesc>,
    lookup: HashMap<(Endpoint, Endpoint), ChannelId>,
    roots: Vec<u32>,
}

impl Graph {
    /// Builds the full channel graph of `tree`.
    pub fn build(tree: MPortNTree) -> Self {
        let n = tree.n();
        let k = tree.k();
        let mut switch_labels = Vec::with_capacity(tree.num_switches());
        let mut switch_index = HashMap::with_capacity(tree.num_switches());
        let mut roots = Vec::new();

        // Enumerate switches level by level, starting from the leaves (the
        // leaf switch of every node, deduplicated) and walking parents.
        // Simpler and robust: enumerate labels directly per level.
        for level in 1..=n {
            let fixed_len = (n - level) as usize;
            let ups_len = (level - 1) as usize;
            // fixed digits: first digit radix m (if any), rest radix k;
            // ups digits: radix k.
            let fixed_count: usize = if fixed_len == 0 {
                1
            } else {
                tree.m() as usize * (k as usize).pow(fixed_len as u32 - 1)
            };
            let ups_count = (k as usize).pow(ups_len as u32);
            for fi in 0..fixed_count {
                let fixed = crate::labels::mixed_radix_decode(fi, fixed_len, tree.m(), k);
                for ui in 0..ups_count {
                    let ups = crate::labels::mixed_radix_decode(ui, ups_len, k, k);
                    let label = SwitchLabel {
                        fixed: fixed.clone(),
                        ups,
                    };
                    let idx = switch_labels.len() as u32;
                    if level == n {
                        roots.push(idx);
                    }
                    switch_index.insert(label.clone(), idx);
                    switch_labels.push(label);
                }
            }
        }
        debug_assert_eq!(switch_labels.len(), tree.num_switches());

        let mut channels = Vec::new();
        let mut lookup = HashMap::new();
        let mut add_link =
            |a: Endpoint, b: Endpoint, kind_ab: ChannelKind, kind_ba: ChannelKind| {
                let id_ab = ChannelId(channels.len() as u32);
                channels.push(ChannelDesc {
                    from: a,
                    to: b,
                    kind: kind_ab,
                });
                let id_ba = ChannelId(channels.len() as u32);
                channels.push(ChannelDesc {
                    from: b,
                    to: a,
                    kind: kind_ba,
                });
                lookup.insert((a, b), id_ab);
                lookup.insert((b, a), id_ba);
            };

        // Node <-> leaf-switch links.
        for node in 0..tree.num_nodes() {
            let label = NodeLabel::from_id(node, tree.m(), n);
            let leaf = SwitchLabel::leaf_of(&label);
            let sw = switch_index[&leaf];
            add_link(
                Endpoint::Node(node as u32),
                Endpoint::Switch(sw),
                ChannelKind::NodeToSwitch,
                ChannelKind::SwitchToNode,
            );
        }

        // Switch <-> switch links: every non-root switch has k up-ports.
        for (idx, label) in switch_labels.iter().enumerate() {
            if label.fixed.is_empty() {
                continue; // root
            }
            for u in 0..k {
                let parent = label.parent(u).expect("non-root has a parent");
                let p_idx = switch_index[&parent];
                add_link(
                    Endpoint::Switch(idx as u32),
                    Endpoint::Switch(p_idx),
                    ChannelKind::SwitchToSwitch,
                    ChannelKind::SwitchToSwitch,
                );
            }
        }

        Self {
            tree,
            switch_labels,
            switch_index,
            channels,
            lookup,
            roots,
        }
    }

    /// The tree descriptor this graph was built from.
    pub fn tree(&self) -> &MPortNTree {
        &self.tree
    }

    /// Total number of directed channels (`2·n·N` for an m-port n-tree).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Descriptor of channel `id`.
    pub fn channel(&self, id: ChannelId) -> &ChannelDesc {
        &self.channels[id.0 as usize]
    }

    /// The opposite direction of the same physical link.
    pub fn reverse(&self, id: ChannelId) -> ChannelId {
        ChannelId(id.0 ^ 1)
    }

    /// Label of switch index `idx`.
    pub fn switch_label(&self, idx: u32) -> &SwitchLabel {
        &self.switch_labels[idx as usize]
    }

    /// Switch indices of the root level.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Channel from endpoint `a` to adjacent endpoint `b`, if the link exists.
    pub fn channel_between(&self, a: Endpoint, b: Endpoint) -> Option<ChannelId> {
        self.lookup.get(&(a, b)).copied()
    }

    /// The deterministic up-port digit used when ascending from level `l`
    /// (1-based) toward a path shaped by `shape` (the destination label for
    /// node-to-node routes).
    ///
    /// The ascent reads the label's *trailing* digits (`p_n` first), in the
    /// spirit of Lin's multiple-LID / d-mod-k schemes: labels that share a
    /// long prefix (and therefore must share descent digits) still fan out
    /// across different ancestors, which keeps root load balanced even when
    /// the destination distribution is skewed toward one subtree. Trailing
    /// digits all have radix `m/2`, so the value is always a valid up-port.
    fn up_digit_with(&self, shape: &NodeLabel, l: u32, policy: AscentPolicy) -> u32 {
        let n = self.tree.n() as usize;
        match policy {
            AscentPolicy::TrailingDigits => {
                let idx = n - l as usize; // p_n for l=1, p_{n-1} for l=2, ...
                debug_assert!(idx >= 1, "ascent digits have radix m/2");
                shape.digits[idx]
            }
            AscentPolicy::MirrorDescent => {
                // The digit the descent will use at this level, folded into
                // the up-port range (index 0 has radix m).
                let idx = n - l as usize - 1;
                shape.digits[idx] % self.tree.k()
            }
        }
    }

    /// Deterministic Up*/Down* route between two distinct nodes: `h`
    /// up-links to the NCA (up-ports chosen from the destination address),
    /// then `h` down-links following the destination digits.
    ///
    /// Returns an empty route when `src == dst`.
    ///
    /// ```
    /// use cocnet_topology::{Graph, MPortNTree};
    /// let g = Graph::build(MPortNTree::new(4, 2)?);
    /// // Nodes 0 and 7 share no leaf switch: the route climbs to a root,
    /// // 2h = 4 channels in total.
    /// let route = g.route(0, 7)?;
    /// assert_eq!(route.nca_level, 2);
    /// assert_eq!(route.channels.len(), 4);
    /// # Ok::<(), cocnet_topology::TopologyError>(())
    /// ```
    #[doc(hidden)]
    pub fn route(&self, src: usize, dst: usize) -> Result<Route, TopologyError> {
        self.route_with_policy(src, dst, AscentPolicy::default())
    }

    /// [`Graph::route`] with an explicit ascent policy.
    #[doc(hidden)]
    pub fn route_with_policy(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_into(src, dst, policy, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_with_policy`]: clears `out`
    /// and writes the route's channels into it, returning the NCA level.
    /// The buffer's capacity is reused across calls, which is what keeps
    /// route-table interning and per-message adaptive routing off the
    /// allocator.
    #[doc(hidden)]
    pub fn route_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let h = self.tree.nca_level(src, dst)?;
        if h == 0 {
            return Ok(0);
        }
        let src_label = self.tree.node_label(src)?;
        let dst_label = self.tree.node_label(dst)?;

        // Ascend: node -> leaf -> ... -> NCA at level h.
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..h {
            let u = self.up_digit_with(&dst_label, l, policy);
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        // Descend: NCA -> ... -> leaf(dst) -> node.
        for l in (1..h).rev() {
            // Down to level l: new fixed digit is dst digit at index n-l-1.
            let d = dst_label.digits[(n - l - 1) as usize];
            let child = sw.child(d).expect("descending above the leaves");
            let next = Endpoint::Switch(self.switch_index[&child]);
            out.push(self.lookup[&(cur, next)]);
            sw = child;
            cur = next;
        }
        out.push(self.lookup[&(cur, Endpoint::Node(dst as u32))]);
        debug_assert_eq!(out.len(), 2 * h as usize);
        Ok(h)
    }

    /// Route from a node up to its deterministic exit root (used by
    /// inter-cluster messages leaving through an ECN1 tree): `n` links.
    ///
    /// The root choice is a function of the *source* address, spreading the
    /// exit traffic of different nodes across the `(m/2)^{n−1}` roots.
    #[doc(hidden)]
    pub fn route_to_root(&self, src: usize) -> Result<Route, TopologyError> {
        self.route_to_root_with_policy(src, AscentPolicy::default())
    }

    /// [`Graph::route_to_root`] with an explicit ascent policy.
    #[doc(hidden)]
    pub fn route_to_root_with_policy(
        &self,
        src: usize,
        policy: AscentPolicy,
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_to_root_into(src, policy, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_to_root_with_policy`]:
    /// clears `out`, writes the ascent channels, returns the root level.
    #[doc(hidden)]
    pub fn route_to_root_into(
        &self,
        src: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let src_label = self.tree.node_label(src)?;
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..n {
            let u = self.up_digit_with(&src_label, l, policy);
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        Ok(n)
    }

    /// Route from the deterministic entry root down to a node (used by
    /// inter-cluster messages entering through an ECN1 tree): the exact
    /// reverse of [`Graph::route_to_root`]`(dst)`, `n` links.
    #[doc(hidden)]
    pub fn route_from_root(&self, dst: usize) -> Result<Route, TopologyError> {
        self.route_from_root_with_policy(dst, AscentPolicy::default())
    }

    /// Adaptive variant of [`Graph::route_to_root`]: ascent digits supplied
    /// by the caller (missing ones fall back to the deterministic policy).
    #[doc(hidden)]
    pub fn route_to_root_adaptive(
        &self,
        src: usize,
        up_digits: &[u32],
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_to_root_adaptive_into(src, up_digits, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_to_root_adaptive`].
    #[doc(hidden)]
    pub fn route_to_root_adaptive_into(
        &self,
        src: usize,
        up_digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let src_label = self.tree.node_label(src)?;
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..n {
            let u = up_digits
                .get((l - 1) as usize)
                .map(|&d| d % self.tree.k())
                .unwrap_or_else(|| self.up_digit_with(&src_label, l, AscentPolicy::TrailingDigits));
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        Ok(n)
    }

    /// [`Graph::route_from_root`] with an explicit ascent policy.
    #[doc(hidden)]
    pub fn route_from_root_with_policy(
        &self,
        dst: usize,
        policy: AscentPolicy,
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_from_root_into(dst, policy, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_from_root_with_policy`]:
    /// the ascent is produced in place, then reversed channel by channel.
    #[doc(hidden)]
    pub fn route_from_root_into(
        &self,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        let nca_level = self.route_to_root_into(dst, policy, out)?;
        out.reverse();
        for c in out.iter_mut() {
            *c = self.reverse(*c);
        }
        Ok(nca_level)
    }

    /// Adaptive Up*/Down* route: like [`Graph::route`] but the ascent
    /// up-ports are taken from `up_digits` (one digit in `0..m/2` per
    /// ascent hop, `h−1` of them at most), as supplied by the caller —
    /// typically sampled uniformly per message, which models the oblivious
    /// flavour of adaptive wormhole routing (paper ref \[7\]) without
    /// making this crate depend on an RNG.
    ///
    /// Missing digits fall back to the deterministic policy; excess digits
    /// are ignored. Descent is fixed by the destination as always.
    #[doc(hidden)]
    pub fn route_adaptive(
        &self,
        src: usize,
        dst: usize,
        up_digits: &[u32],
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_adaptive_into(src, dst, up_digits, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_adaptive`].
    #[doc(hidden)]
    pub fn route_adaptive_into(
        &self,
        src: usize,
        dst: usize,
        up_digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let h = self.tree.nca_level(src, dst)?;
        if h == 0 {
            return Ok(0);
        }
        let src_label = self.tree.node_label(src)?;
        let dst_label = self.tree.node_label(dst)?;
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..h {
            let u = up_digits
                .get((l - 1) as usize)
                .map(|&d| d % self.tree.k())
                .unwrap_or_else(|| self.up_digit_with(&dst_label, l, AscentPolicy::TrailingDigits));
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        for l in (1..h).rev() {
            let d = dst_label.digits[(n - l - 1) as usize];
            let child = sw.child(d).expect("descending above the leaves");
            let next = Endpoint::Switch(self.switch_index[&child]);
            out.push(self.lookup[&(cur, next)]);
            sw = child;
            cur = next;
        }
        out.push(self.lookup[&(cur, Endpoint::Node(dst as u32))]);
        Ok(h)
    }

    /// Fault-aware form of [`Graph::route_into`]: routes `src → dst`
    /// avoiding every channel in `faults`.
    ///
    /// With an empty fault set this delegates to the deterministic router,
    /// so the produced route is *byte-identical* to [`Graph::route_into`]
    /// and the fast path pays nothing. Otherwise a deterministic
    /// depth-first search explores every alternate ascent — the
    /// policy-preferred up-port first, then the remaining digits in
    /// ascending order — covering all `(m/2)^{h−1}` NCA candidates at level
    /// `h`. That search is *complete* for Up*/Down* in this label algebra:
    /// a turn above the NCA would descend back through the very switches
    /// (and tandem-failing links) the ascent used, so it can never rescue a
    /// pair with no fault-free level-`h` turn. Returns the NCA level, or
    /// [`TopologyError::Disconnected`] when no fault-free Up*/Down* path
    /// exists (`out` is left empty in that case).
    #[doc(hidden)]
    pub fn route_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_into(src, dst, policy, out);
        }
        out.clear();
        let n = self.tree.n();
        let h = self.tree.nca_level(src, dst)?;
        if h == 0 {
            return Ok(0);
        }
        let disconnected = TopologyError::Disconnected {
            src,
            dst: Some(dst),
        };
        let src_label = self.tree.node_label(src)?;
        let dst_label = self.tree.node_label(dst)?;
        let src_leaf = SwitchLabel::leaf_of(&src_label);
        let dst_leaf = SwitchLabel::leaf_of(&dst_label);
        let cur = Endpoint::Switch(self.switch_index[&src_leaf]);
        let inj = self.lookup[&(Endpoint::Node(src as u32), cur)];
        let ej = self.lookup[&(
            Endpoint::Switch(self.switch_index[&dst_leaf]),
            Endpoint::Node(dst as u32),
        )];
        // Injection and ejection channels have no alternative: if either is
        // down the pair is disconnected regardless of the switch fabric.
        if faults.is_failed(inj) || faults.is_failed(ej) {
            return Err(disconnected);
        }
        let ctx = AvoidCtx {
            shape: &dst_label,
            policy,
            faults,
            n,
            target: h,
            dst: Some(dst as u32),
        };
        out.push(inj);
        if self.search_avoiding(&src_leaf, cur, 1, &ctx, out) {
            debug_assert_eq!(out.len(), 2 * h as usize);
            Ok(h)
        } else {
            out.clear();
            Err(disconnected)
        }
    }

    /// The **route tail** of `src → dst`: [`Graph::route_into`] minus its
    /// injection channel (`2h − 1` channels; empty when `src == dst`).
    ///
    /// The tail is a pure function of `src`'s *leaf switch* and `dst`
    /// ([`crate::MPortNTree::intra_route_class`]): the ascent digits are read
    /// from the destination label and the walk starts at `leaf(src)`, so
    /// every `src` under one leaf produces the identical tail. This is the
    /// primitive class-keyed route interning materializes once per class —
    /// per-pair state is reduced to the injection channel, which the caller
    /// reconstructs arithmetically.
    #[doc(hidden)]
    pub fn route_tail_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let h = self.tree.nca_level(src, dst)?;
        if h == 0 {
            return Ok(0);
        }
        let src_label = self.tree.node_label(src)?;
        let dst_label = self.tree.node_label(dst)?;

        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        for l in 1..h {
            let u = self.up_digit_with(&dst_label, l, policy);
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        for l in (1..h).rev() {
            let d = dst_label.digits[(n - l - 1) as usize];
            let child = sw.child(d).expect("descending above the leaves");
            let next = Endpoint::Switch(self.switch_index[&child]);
            out.push(self.lookup[&(cur, next)]);
            sw = child;
            cur = next;
        }
        out.push(self.lookup[&(cur, Endpoint::Node(dst as u32))]);
        debug_assert_eq!(out.len(), 2 * h as usize - 1);
        Ok(h)
    }

    /// Fault-aware form of [`Graph::route_tail_into`]: the avoiding route
    /// minus its injection channel — and, deliberately, minus the
    /// injection-failed pre-check. The tail is shared by every node under
    /// the leaf, whereas an injection fault kills exactly one of them, so
    /// the caller applies the injection check per pair (demoting single
    /// pairs, not the whole class). The ejection pre-check stays: it is
    /// part of the shared tail. Byte-identical to
    /// [`Graph::route_into_avoiding`]`[1..]` whenever that route exists and
    /// its injection channel is healthy.
    #[doc(hidden)]
    pub fn route_tail_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_tail_into(src, dst, policy, out);
        }
        out.clear();
        let n = self.tree.n();
        let h = self.tree.nca_level(src, dst)?;
        if h == 0 {
            return Ok(0);
        }
        let disconnected = TopologyError::Disconnected {
            src,
            dst: Some(dst),
        };
        let src_label = self.tree.node_label(src)?;
        let dst_label = self.tree.node_label(dst)?;
        let src_leaf = SwitchLabel::leaf_of(&src_label);
        let dst_leaf = SwitchLabel::leaf_of(&dst_label);
        let cur = Endpoint::Switch(self.switch_index[&src_leaf]);
        let ej = self.lookup[&(
            Endpoint::Switch(self.switch_index[&dst_leaf]),
            Endpoint::Node(dst as u32),
        )];
        if faults.is_failed(ej) {
            return Err(disconnected);
        }
        let ctx = AvoidCtx {
            shape: &dst_label,
            policy,
            faults,
            n,
            target: h,
            dst: Some(dst as u32),
        };
        if self.search_avoiding(&src_leaf, cur, 1, &ctx, out) {
            debug_assert_eq!(out.len(), 2 * h as usize - 1);
            Ok(h)
        } else {
            out.clear();
            Err(disconnected)
        }
    }

    /// Fault-aware form of [`Graph::route_to_root_into`]: ascends from
    /// `src` to *any* root avoiding failed channels, preferring the
    /// deterministic exit root's up-ports at every level. Delegates to the
    /// deterministic router when `faults` is empty (byte-identical route);
    /// returns [`TopologyError::Disconnected`] with `dst: None` when every
    /// ascent is cut.
    #[doc(hidden)]
    pub fn route_to_root_into_avoiding(
        &self,
        src: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_to_root_into(src, policy, out);
        }
        out.clear();
        let n = self.tree.n();
        let src_label = self.tree.node_label(src)?;
        let leaf = SwitchLabel::leaf_of(&src_label);
        let cur = Endpoint::Switch(self.switch_index[&leaf]);
        let inj = self.lookup[&(Endpoint::Node(src as u32), cur)];
        if faults.is_failed(inj) {
            return Err(TopologyError::Disconnected { src, dst: None });
        }
        let ctx = AvoidCtx {
            shape: &src_label,
            policy,
            faults,
            n,
            target: n,
            dst: None,
        };
        out.push(inj);
        if self.search_avoiding(&leaf, cur, 1, &ctx, out) {
            Ok(n)
        } else {
            out.clear();
            Err(TopologyError::Disconnected { src, dst: None })
        }
    }

    /// Fault-aware form of [`Graph::route_from_root_into`]: the avoiding
    /// ascent toward `dst`'s entry root, reversed channel by channel.
    /// Because both directions of a link fail in tandem, a fault-free
    /// ascent reversed is a fault-free descent. The `Disconnected` error
    /// reports `dst` as its source node (the ascent it mirrors).
    #[doc(hidden)]
    pub fn route_from_root_into_avoiding(
        &self,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        let nca_level = self.route_to_root_into_avoiding(dst, policy, faults, out)?;
        out.reverse();
        for c in out.iter_mut() {
            *c = self.reverse(*c);
        }
        Ok(nca_level)
    }

    /// Depth-first ascent of the avoiding router: from switch `sw` at
    /// level `l` (its channels already in `out`), try every healthy
    /// up-port — preferred digit first — until either the target level is
    /// reached (then descend, for node-to-node routes) or all options are
    /// exhausted. Leaves `out` exactly as found when returning `false`.
    fn search_avoiding(
        &self,
        sw: &SwitchLabel,
        cur: Endpoint,
        l: u32,
        ctx: &AvoidCtx<'_>,
        out: &mut Vec<ChannelId>,
    ) -> bool {
        if l == ctx.target {
            return match ctx.dst {
                Some(dst) => self.descend_avoiding(sw, cur, dst, ctx, out),
                None => true, // to-root route: any root will do
            };
        }
        let k = self.tree.k();
        let preferred = self.up_digit_with(ctx.shape, l, ctx.policy);
        let order = std::iter::once(preferred).chain((0..k).filter(|&u| u != preferred));
        for u in order {
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            let ch = self.lookup[&(cur, next)];
            if ctx.faults.is_failed(ch) {
                continue;
            }
            out.push(ch);
            if self.search_avoiding(&parent, next, l + 1, ctx, out) {
                return true;
            }
            out.pop();
        }
        false
    }

    /// The fixed descent of the avoiding router: from the turn switch at
    /// `ctx.target` down to node `dst` following the destination digits.
    /// Fails (restoring `out`) as soon as any descent channel is down —
    /// the caller then backtracks to a different turn switch.
    fn descend_avoiding(
        &self,
        sw: &SwitchLabel,
        cur: Endpoint,
        dst: u32,
        ctx: &AvoidCtx<'_>,
        out: &mut Vec<ChannelId>,
    ) -> bool {
        let mark = out.len();
        let mut sw = sw.clone();
        let mut cur = cur;
        for l in (1..ctx.target).rev() {
            let d = ctx.shape.digits[(ctx.n - l - 1) as usize];
            let child = sw.child(d).expect("descending above the leaves");
            let next = Endpoint::Switch(self.switch_index[&child]);
            let ch = self.lookup[&(cur, next)];
            if ctx.faults.is_failed(ch) {
                out.truncate(mark);
                return false;
            }
            out.push(ch);
            sw = child;
            cur = next;
        }
        // Ejection was pre-checked by the caller: it has no alternative.
        out.push(self.lookup[&(cur, Endpoint::Node(dst))]);
        true
    }

    /// Structural self-check: channel count, port budgets, reverse pairing.
    /// Cheap enough to run in tests on every topology used.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let bad = |what: String| TopologyError::BadGraphStructure { what };
        let n = self.tree.n() as usize;
        let nodes = self.tree.num_nodes();
        let expect = 2 * n * nodes;
        if self.num_channels() != expect {
            return Err(bad(format!(
                "channel count {} != 2nN = {expect}",
                self.num_channels()
            )));
        }
        // Reverse pairing: reverse(reverse(c)) == c, endpoints mirrored.
        for i in 0..self.channels.len() {
            let id = ChannelId(i as u32);
            let rev = self.reverse(id);
            let a = self.channel(id);
            let b = self.channel(rev);
            if a.from != b.to || a.to != b.from {
                return Err(bad(format!("channel {i} and its reverse are not mirrored")));
            }
        }
        // Per-switch port budget: down + up degree <= m (root: == m down).
        let mut down = vec![0u32; self.switch_labels.len()];
        let mut up = vec![0u32; self.switch_labels.len()];
        for ch in &self.channels {
            if let (Endpoint::Switch(s), Endpoint::Switch(t)) = (ch.from, ch.to) {
                let ls = self.switch_labels[s as usize].level(self.tree.n());
                let lt = self.switch_labels[t as usize].level(self.tree.n());
                if ls < lt {
                    up[s as usize] += 1;
                } else {
                    down[s as usize] += 1;
                }
            } else if let (Endpoint::Switch(s), Endpoint::Node(_)) = (ch.from, ch.to) {
                down[s as usize] += 1;
            }
        }
        for (i, label) in self.switch_labels.iter().enumerate() {
            let level = label.level(self.tree.n());
            let is_root = level == self.tree.n();
            // Roots use all m ports downward; in a single-level tree the
            // sole switch is both root and leaf, also with m node ports.
            let expect_down = if is_root {
                self.tree.m()
            } else {
                self.tree.k()
            };
            let expect_up = if is_root { 0 } else { self.tree.k() };
            if down[i] != expect_down || up[i] != expect_up {
                return Err(bad(format!(
                    "switch {i} (level {level}) has {} down / {} up ports, expected {} / {}",
                    down[i], up[i], expect_down, expect_up
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(m: u32, n: u32) -> Graph {
        Graph::build(MPortNTree::new(m, n).unwrap())
    }

    #[test]
    fn structure_validates_for_paper_trees() {
        for (m, n) in [(4, 1), (4, 2), (4, 3), (4, 4), (8, 1), (8, 2), (8, 3)] {
            let g = graph(m, n);
            g.validate().unwrap_or_else(|e| panic!("m={m} n={n}: {e}"));
        }
    }

    #[test]
    fn channel_count_is_2nn() {
        let g = graph(8, 2);
        assert_eq!(g.num_channels(), 2 * 2 * 32);
    }

    #[test]
    fn route_length_is_twice_nca_level() {
        let g = graph(4, 3);
        let t = g.tree();
        for src in 0..t.num_nodes() {
            for dst in 0..t.num_nodes() {
                let r = g.route(src, dst).unwrap();
                let h = t.nca_level(src, dst).unwrap();
                assert_eq!(r.channels.len(), 2 * h as usize, "{src}->{dst}");
                assert_eq!(r.nca_level, h);
            }
        }
    }

    #[test]
    fn route_is_connected_and_valley_free() {
        // Channels must chain (to == next.from), start at src, end at dst,
        // and switch levels must rise to the NCA then fall (Up*/Down*).
        let g = graph(8, 3);
        let t = *g.tree();
        let n = t.num_nodes();
        for (src, dst) in [(0, n - 1), (3, 77), (100, 5), (1, 0), (42, 43)] {
            let r = g.route(src, dst).unwrap();
            let first = g.channel(r.channels[0]);
            assert_eq!(first.from, Endpoint::Node(src as u32));
            let last = g.channel(*r.channels.last().unwrap());
            assert_eq!(last.to, Endpoint::Node(dst as u32));
            let mut levels = Vec::new();
            for w in r.channels.windows(2) {
                let a = g.channel(w[0]);
                let b = g.channel(w[1]);
                assert_eq!(a.to, b.from, "path must chain");
                if let Endpoint::Switch(s) = a.to {
                    levels.push(g.switch_label(s).level(t.n()));
                }
            }
            // Valley-free: strictly increasing then strictly decreasing.
            let peak = levels.iter().position(|&l| l == r.nca_level).unwrap();
            assert!(levels[..peak].windows(2).all(|w| w[1] == w[0] + 1));
            assert!(levels[peak..].windows(2).all(|w| w[1] == w[0] - 1));
        }
    }

    #[test]
    fn route_same_node_is_empty() {
        let g = graph(4, 2);
        let r = g.route(3, 3).unwrap();
        assert!(r.channels.is_empty());
        assert_eq!(r.nca_level, 0);
    }

    #[test]
    fn route_deterministic() {
        let g = graph(8, 2);
        let a = g.route(1, 20).unwrap();
        let b = g.route(1, 20).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn route_to_root_has_n_links_and_ends_at_root() {
        let g = graph(4, 3);
        for src in 0..g.tree().num_nodes() {
            let r = g.route_to_root(src).unwrap();
            assert_eq!(r.channels.len(), 3);
            let last = g.channel(*r.channels.last().unwrap());
            if let Endpoint::Switch(s) = last.to {
                assert_eq!(g.switch_label(s).level(3), 3, "must end at a root");
            } else {
                panic!("route_to_root must end at a switch");
            }
        }
    }

    #[test]
    fn route_from_root_mirrors_route_to_root() {
        let g = graph(4, 2);
        for dst in 0..g.tree().num_nodes() {
            let up = g.route_to_root(dst).unwrap();
            let down = g.route_from_root(dst).unwrap();
            assert_eq!(down.channels.len(), up.channels.len());
            let first = g.channel(down.channels[0]);
            if let Endpoint::Switch(s) = first.from {
                assert_eq!(g.switch_label(s).level(2), 2);
            } else {
                panic!("route_from_root must start at a switch");
            }
            let last = g.channel(*down.channels.last().unwrap());
            assert_eq!(last.to, Endpoint::Node(dst as u32));
        }
    }

    #[test]
    fn exit_roots_spread_across_sources() {
        // With k^(n-1) = 4 roots and 32 nodes, the per-source deterministic
        // exit root must hit more than one distinct root.
        let g = graph(8, 2);
        let mut seen = std::collections::HashSet::new();
        for src in 0..g.tree().num_nodes() {
            let r = g.route_to_root(src).unwrap();
            if let Endpoint::Switch(s) = g.channel(*r.channels.last().unwrap()).to {
                seen.insert(s);
            }
        }
        assert_eq!(seen.len(), g.roots().len(), "all roots should be used");
    }

    #[test]
    fn reverse_is_involutive_and_mirrored() {
        let g = graph(4, 2);
        for i in 0..g.num_channels() {
            let id = ChannelId(i as u32);
            assert_eq!(g.reverse(g.reverse(id)), id);
            let a = g.channel(id);
            let b = g.channel(g.reverse(id));
            assert_eq!(a.from, b.to);
            assert_eq!(a.to, b.from);
        }
    }

    #[test]
    fn adaptive_routes_are_valid_for_any_digits() {
        let g = graph(8, 3);
        let t = *g.tree();
        for (src, dst) in [(0usize, 127usize), (5, 9), (64, 1)] {
            let h = t.nca_level(src, dst).unwrap();
            // Every combination of up digits yields a valid chained route
            // of the same length ending at the destination.
            for digits in [[0u32, 0], [3, 1], [2, 3], [1, 2]] {
                let r = g.route_adaptive(src, dst, &digits).unwrap();
                assert_eq!(r.channels.len(), 2 * h as usize);
                for w in r.channels.windows(2) {
                    assert_eq!(g.channel(w[0]).to, g.channel(w[1]).from);
                }
                assert_eq!(
                    g.channel(*r.channels.last().unwrap()).to,
                    Endpoint::Node(dst as u32)
                );
            }
        }
    }

    #[test]
    fn adaptive_with_no_digits_matches_deterministic() {
        let g = graph(4, 3);
        for (src, dst) in [(0usize, 15usize), (3, 12), (7, 8)] {
            let det = g.route(src, dst).unwrap();
            let ada = g.route_adaptive(src, dst, &[]).unwrap();
            assert_eq!(det, ada);
        }
    }

    #[test]
    fn adaptive_digits_select_distinct_ncas() {
        // Different up digits must reach different root switches for a
        // maximal-distance pair.
        let g = graph(8, 2);
        let mut roots = std::collections::HashSet::new();
        for u in 0..4u32 {
            let r = g.route_adaptive(0, 31, &[u]).unwrap();
            // The NCA is the endpoint of the last ascent channel.
            let nca = g.channel(r.channels[1]).to;
            roots.insert(format!("{nca:?}"));
        }
        assert_eq!(roots.len(), 4);
    }

    #[test]
    fn into_variants_match_allocating_routes() {
        // The `_into` forms exist so hot paths can reuse one buffer; they
        // must emit exactly what the allocating forms return, including
        // after the buffer has held a longer previous route.
        let g = graph(8, 3);
        let mut buf = Vec::new();
        for (src, dst) in [(0usize, 127usize), (5, 9), (64, 1), (3, 3)] {
            let r = g.route(src, dst).unwrap();
            let h = g
                .route_into(src, dst, AscentPolicy::default(), &mut buf)
                .unwrap();
            assert_eq!(h, r.nca_level);
            assert_eq!(buf, r.channels);
        }
        for src in [0usize, 31, 77] {
            let up = g.route_to_root(src).unwrap();
            let h = g
                .route_to_root_into(src, AscentPolicy::default(), &mut buf)
                .unwrap();
            assert_eq!(h, up.nca_level);
            assert_eq!(buf, up.channels);
            let down = g.route_from_root(src).unwrap();
            g.route_from_root_into(src, AscentPolicy::default(), &mut buf)
                .unwrap();
            assert_eq!(buf, down.channels);
            let ada = g.route_to_root_adaptive(src, &[1, 2]).unwrap();
            g.route_to_root_adaptive_into(src, &[1, 2], &mut buf)
                .unwrap();
            assert_eq!(buf, ada.channels);
        }
        let ada = g.route_adaptive(0, 127, &[3, 1]).unwrap();
        g.route_adaptive_into(0, 127, &[3, 1], &mut buf).unwrap();
        assert_eq!(buf, ada.channels);
    }

    /// Every channel of `route` is healthy, the path chains, and it runs
    /// from `src` to `dst` with a single ascent followed by a single
    /// descent (valid Up*/Down* shape).
    fn assert_valid_avoiding_route(
        g: &Graph,
        src: usize,
        dst: usize,
        route: &[ChannelId],
        faults: &FaultSet,
    ) {
        assert!(!route.is_empty());
        for &c in route {
            assert!(!faults.is_failed(c), "route traverses failed {c:?}");
        }
        assert_eq!(g.channel(route[0]).from, Endpoint::Node(src as u32));
        assert_eq!(
            g.channel(*route.last().unwrap()).to,
            Endpoint::Node(dst as u32)
        );
        let n = g.tree().n();
        let mut levels = Vec::new();
        for w in route.windows(2) {
            assert_eq!(g.channel(w[0]).to, g.channel(w[1]).from, "path must chain");
            if let Endpoint::Switch(s) = g.channel(w[0]).to {
                levels.push(g.switch_label(s).level(n));
            }
        }
        let peak = levels.iter().position(|&l| Some(&l) == levels.iter().max());
        let peak = peak.unwrap_or(0);
        assert!(
            levels[..peak].windows(2).all(|w| w[1] == w[0] + 1),
            "ascent must be strict: {levels:?}"
        );
        assert!(
            levels[peak..].windows(2).all(|w| w[1] == w[0] - 1),
            "descent must be strict: {levels:?}"
        );
    }

    #[test]
    fn avoiding_with_empty_faults_is_byte_identical() {
        let g = graph(4, 3);
        let none = FaultSet::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for policy in [AscentPolicy::TrailingDigits, AscentPolicy::MirrorDescent] {
            for src in 0..g.tree().num_nodes() {
                for dst in 0..g.tree().num_nodes() {
                    let h1 = g.route_into(src, dst, policy, &mut a).unwrap();
                    let h2 = g
                        .route_into_avoiding(src, dst, policy, &none, &mut b)
                        .unwrap();
                    assert_eq!(h1, h2);
                    assert_eq!(a, b, "{src}->{dst}");
                }
                let h1 = g.route_to_root_into(src, policy, &mut a).unwrap();
                let h2 = g
                    .route_to_root_into_avoiding(src, policy, &none, &mut b)
                    .unwrap();
                assert_eq!((h1, &a), (h2, &b));
                g.route_from_root_into(src, policy, &mut a).unwrap();
                g.route_from_root_into_avoiding(src, policy, &none, &mut b)
                    .unwrap();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn route_tail_is_class_invariant() {
        // The tail (route minus injection) must equal route_into[1..] for
        // every pair, and must be identical across all srcs under one leaf
        // switch — the invariant class-keyed interning builds on.
        for (m, n) in [(4u32, 1u32), (4, 2), (4, 3), (8, 2)] {
            let g = graph(m, n);
            let t = *g.tree();
            for policy in [AscentPolicy::TrailingDigits, AscentPolicy::MirrorDescent] {
                let mut full = Vec::new();
                let mut tail = Vec::new();
                let mut rep_tail = Vec::new();
                for src in 0..t.num_nodes() {
                    for dst in 0..t.num_nodes() {
                        let h1 = g.route_into(src, dst, policy, &mut full).unwrap();
                        let h2 = g.route_tail_into(src, dst, policy, &mut tail).unwrap();
                        assert_eq!(h1, h2, "m={m} n={n} {src}->{dst}");
                        assert_eq!(&full[!full.is_empty() as usize..], &tail[..]);
                        if src == dst {
                            continue;
                        }
                        // Any other member of src's leaf shares the tail.
                        let leaf = t.leaf_index_of(src).unwrap();
                        if let Some(rep) = (0..t.num_nodes())
                            .find(|&s| s != src && s != dst && t.leaf_index_of(s).unwrap() == leaf)
                        {
                            g.route_tail_into(rep, dst, policy, &mut rep_tail).unwrap();
                            assert_eq!(tail, rep_tail, "m={m} n={n} leaf={leaf} dst={dst}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn route_tail_avoiding_ignores_injection_faults_only() {
        let g = graph(4, 3);
        let t = *g.tree();
        let (src, dst) = (0usize, 15usize);
        let base = g.route(src, dst).unwrap();
        let mut tail = Vec::new();
        let mut full = Vec::new();
        // A failed trunk link reroutes the tail exactly like the full route.
        let mut faults = FaultSet::new();
        faults.fail_link(base.channels[1]);
        let h = g
            .route_into_avoiding(src, dst, AscentPolicy::default(), &faults, &mut full)
            .unwrap();
        let ht = g
            .route_tail_into_avoiding(src, dst, AscentPolicy::default(), &faults, &mut tail)
            .unwrap();
        assert_eq!((h, &full[1..]), (ht, &tail[..]));
        // A failed *injection* channel disconnects the pair but not the
        // class: the tail is still produced, unchanged, so only the one
        // member with the dead injection link is demoted.
        let mut inj_fault = FaultSet::new();
        inj_fault.fail_link(base.channels[0]);
        assert!(g
            .route_into_avoiding(src, dst, AscentPolicy::default(), &inj_fault, &mut full)
            .is_err());
        let ht = g
            .route_tail_into_avoiding(src, dst, AscentPolicy::default(), &inj_fault, &mut tail)
            .unwrap();
        assert_eq!((ht, &tail[..]), (base.nca_level, &base.channels[1..]));
        // A failed ejection channel kills the whole class.
        let mut ej_fault = FaultSet::new();
        ej_fault.fail_link(*base.channels.last().unwrap());
        for s in 0..t.num_nodes() {
            if t.leaf_index_of(s).unwrap() == t.leaf_index_of(src).unwrap() && s != dst {
                assert!(g
                    .route_tail_into_avoiding(s, dst, AscentPolicy::default(), &ej_fault, &mut tail)
                    .is_err());
            }
        }
    }

    #[test]
    fn avoiding_reroutes_around_failed_ascent_link() {
        let g = graph(8, 2);
        let (src, dst) = (0usize, 31usize);
        let base = g.route(src, dst).unwrap();
        assert_eq!(base.nca_level, 2);
        let mut faults = FaultSet::new();
        faults.fail_link(base.channels[1]); // the preferred first up-link
        let mut out = Vec::new();
        let h = g
            .route_into_avoiding(src, dst, AscentPolicy::default(), &faults, &mut out)
            .unwrap();
        assert_eq!(h, 2, "an alternate level-2 ascent must exist");
        assert_ne!(out, base.channels);
        assert_valid_avoiding_route(&g, src, dst, &out, &faults);
    }

    #[test]
    fn avoiding_search_over_nca_candidates_is_complete() {
        // Pick a pair with NCA level 2 in a 3-level tree and cut the
        // ascent to one level-2 candidate plus the descent from the other.
        // A turn at level 3 would descend back through the ascent's own
        // tandem-failing links, so no Up*/Down* path survives: the pair is
        // Disconnected — while cutting only one side still reroutes.
        let g = graph(4, 3);
        let t = *g.tree();
        let (src, dst) = (0..t.num_nodes())
            .flat_map(|s| (0..t.num_nodes()).map(move |d| (s, d)))
            .find(|&(s, d)| t.nca_level(s, d).unwrap() == 2)
            .unwrap();
        let via_a = g.route(src, dst).unwrap();
        let via_b = (0..t.k())
            .map(|u| g.route_adaptive(src, dst, &[u]).unwrap())
            .find(|r| r.channels[1] != via_a.channels[1])
            .expect("k=2 gives a second ascent");
        let mut out = Vec::new();
        let mut faults = FaultSet::new();
        faults.fail_link(via_a.channels[1]); // ascent into NCA A
        let h = g
            .route_into_avoiding(src, dst, AscentPolicy::default(), &faults, &mut out)
            .unwrap();
        assert_eq!(h, 2, "one cut ascent still leaves NCA B");
        assert_valid_avoiding_route(&g, src, dst, &out, &faults);
        faults.fail_link(via_b.channels[2]); // descent out of NCA B
        let err = g
            .route_into_avoiding(src, dst, AscentPolicy::default(), &faults, &mut out)
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::Disconnected {
                src,
                dst: Some(dst)
            }
        );
    }

    #[test]
    fn avoiding_reports_disconnected_when_injection_or_ejection_cut() {
        let g = graph(4, 2);
        let (src, dst) = (0usize, 7usize);
        let base = g.route(src, dst).unwrap();
        let mut out = Vec::new();
        for cut in [base.channels[0], *base.channels.last().unwrap()] {
            let mut faults = FaultSet::new();
            faults.fail_link(cut);
            let err = g
                .route_into_avoiding(src, dst, AscentPolicy::default(), &faults, &mut out)
                .unwrap_err();
            assert_eq!(
                err,
                TopologyError::Disconnected {
                    src,
                    dst: Some(dst)
                }
            );
            assert!(out.is_empty(), "failed search must leave the buffer empty");
        }
    }

    #[test]
    fn fail_switch_disconnects_routes_through_it() {
        let g = graph(4, 2);
        // Kill the leaf switch of node 0: nodes 0/1 become unreachable,
        // pairs avoiding that switch still route.
        let leaf = match g.channel(g.route(0, 7).unwrap().channels[0]).to {
            Endpoint::Switch(s) => s,
            _ => unreachable!(),
        };
        let mut faults = FaultSet::new();
        faults.fail_switch(&g, leaf);
        let mut out = Vec::new();
        let err = g
            .route_into_avoiding(0, 7, AscentPolicy::default(), &faults, &mut out)
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::Disconnected {
                src: 0,
                dst: Some(7)
            }
        );
        let h = g
            .route_into_avoiding(4, 7, AscentPolicy::default(), &faults, &mut out)
            .unwrap();
        assert!(h > 0);
        assert_valid_avoiding_route(&g, 4, 7, &out, &faults);
    }

    #[test]
    fn avoiding_to_root_reroutes_and_disconnects() {
        let g = graph(8, 2);
        let base = g.route_to_root(0).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_link(base.channels[1]);
        let mut out = Vec::new();
        let n = g
            .route_to_root_into_avoiding(0, AscentPolicy::default(), &faults, &mut out)
            .unwrap();
        assert_eq!(n, 2);
        assert_ne!(out, base.channels);
        for &c in &out {
            assert!(!faults.is_failed(c));
        }
        match g.channel(*out.last().unwrap()).to {
            Endpoint::Switch(s) => assert_eq!(g.switch_label(s).level(2), 2),
            _ => panic!("must end at a root"),
        }
        // Mirrored entry route also avoids the faults.
        g.route_from_root_into_avoiding(0, AscentPolicy::default(), &faults, &mut out)
            .unwrap();
        for &c in &out {
            assert!(!faults.is_failed(c));
        }
        assert_eq!(g.channel(*out.last().unwrap()).to, Endpoint::Node(0));
        // Cutting every up-link of the leaf switch strands the node.
        let leaf = match g.channel(base.channels[0]).to {
            Endpoint::Switch(s) => s,
            _ => unreachable!(),
        };
        for u in 0..g.tree().k() {
            let parent = g.switch_label(leaf).parent(u).unwrap();
            let p = g.switch_index[&parent];
            faults.fail_link(
                g.channel_between(Endpoint::Switch(leaf), Endpoint::Switch(p))
                    .unwrap(),
            );
        }
        let err = g
            .route_to_root_into_avoiding(0, AscentPolicy::default(), &faults, &mut out)
            .unwrap_err();
        assert_eq!(err, TopologyError::Disconnected { src: 0, dst: None });
    }

    #[test]
    fn avoiding_routes_never_traverse_failed_channels_sweep() {
        // Deterministic "random" faults: fail every 5th link. For every
        // pair the avoiding router must either produce a clean valid
        // Up*/Down* route or report Disconnected — never a dirty route.
        let g = graph(4, 3);
        let mut faults = FaultSet::new();
        for i in (0..g.num_channels()).step_by(10) {
            faults.fail_link(ChannelId(i as u32));
        }
        let mut out = Vec::new();
        let (mut ok, mut cut) = (0usize, 0usize);
        for src in 0..g.tree().num_nodes() {
            for dst in 0..g.tree().num_nodes() {
                if src == dst {
                    continue;
                }
                match g.route_into_avoiding(src, dst, AscentPolicy::default(), &faults, &mut out) {
                    Ok(_) => {
                        ok += 1;
                        assert_valid_avoiding_route(&g, src, dst, &out, &faults);
                    }
                    Err(TopologyError::Disconnected { .. }) => {
                        cut += 1;
                        assert!(out.is_empty());
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        assert!(ok > 0, "some pairs must still route");
        assert!(cut > 0, "failing injection links must strand some pairs");
    }

    #[test]
    fn fault_set_pairs_reverse_channels() {
        let g = graph(4, 2);
        let mut f = FaultSet::new();
        assert!(f.is_empty());
        f.fail_link(ChannelId(6));
        assert!(f.is_failed(ChannelId(6)));
        assert!(f.is_failed(g.reverse(ChannelId(6))));
        assert_eq!(f.len(), 2);
        f.repair_link(ChannelId(7));
        assert!(f.is_empty());
    }

    #[test]
    fn kinds_are_consistent() {
        let g = graph(4, 2);
        for i in 0..g.num_channels() {
            let ch = g.channel(ChannelId(i as u32));
            match (ch.from, ch.to) {
                (Endpoint::Node(_), Endpoint::Switch(_)) => {
                    assert_eq!(ch.kind, ChannelKind::NodeToSwitch)
                }
                (Endpoint::Switch(_), Endpoint::Node(_)) => {
                    assert_eq!(ch.kind, ChannelKind::SwitchToNode)
                }
                (Endpoint::Switch(_), Endpoint::Switch(_)) => {
                    assert_eq!(ch.kind, ChannelKind::SwitchToSwitch)
                }
                _ => panic!("node-to-node channel cannot exist"),
            }
        }
    }
}
