//! Explicit channel-level wiring of an m-port n-tree with deterministic
//! Up*/Down* routing.
//!
//! The [`Graph`] materialises every directed channel of a tree so the
//! discrete-event simulator can model per-channel contention (assumption 6:
//! input-buffered switches, one flit buffer per channel). Routes follow the
//! paper's deterministic Up*/Down* scheme (refs \[19, 20\]): ascend to a
//! nearest common ancestor, then descend. The ascent's up-port choice is a
//! fixed function of the addresses, making the path unique per
//! (source, destination) pair — deterministic routing, as in most cluster
//! interconnect technologies (paper §2).
//!
//! Channels are allocated so that the two directions of one physical link
//! get consecutive ids; [`Graph::reverse`] is therefore just `id ^ 1`.

use crate::error::TopologyError;
use crate::labels::{NodeLabel, SwitchLabel};
use crate::tree::MPortNTree;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One directed channel (graph edge) of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

/// What kind of connection a channel realises; determines whether the
/// node↔switch (`t_cn`) or switch↔switch (`t_cs`) service time applies
/// (Eqs. (11)–(12)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Injection channel: processing node into its leaf switch.
    NodeToSwitch,
    /// Internal channel between two switches (either direction).
    SwitchToSwitch,
    /// Ejection channel: leaf switch down to a processing node.
    SwitchToNode,
}

/// A vertex of the network graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// Processing node, by node id.
    Node(u32),
    /// Switch, by dense switch index (see [`Graph::switch_label`]).
    Switch(u32),
}

/// Descriptor of one directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelDesc {
    /// Source endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Connection kind (service-time class).
    pub kind: ChannelKind,
}

/// A routed path: the ordered channels a message's header traverses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Channels in traversal order.
    pub channels: Vec<ChannelId>,
    /// NCA level of the journey (`h`); `channels.len() == 2h` for
    /// node-to-node routes.
    pub nca_level: u32,
}

/// How the Up*/Down* ascent picks its up-port at each level.
///
/// Both policies are deterministic per (source, destination); they differ
/// in how traffic toward a *skewed* destination distribution spreads over
/// the parallel ancestors (see DESIGN.md §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AscentPolicy {
    /// Read the shaping label's trailing digits (`p_n` first) — Lin's
    /// multiple-LID / d-mod-k flavour. Destinations that share a subtree
    /// (and therefore their descent digits) still fan out across different
    /// roots: balanced under skewed traffic. The default.
    #[default]
    TrailingDigits,
    /// Mirror the descent digits (`p_{n-1}` first, folded into `m/2` by a
    /// modulo). Simple, but every message toward the same subtree climbs
    /// through the same ancestors — a root hot-spot under skewed traffic.
    /// Kept as the `ablation_routing` baseline.
    MirrorDescent,
}

/// An m-port n-tree with all channels materialised.
#[derive(Debug, Clone)]
pub struct Graph {
    tree: MPortNTree,
    switch_labels: Vec<SwitchLabel>,
    switch_index: HashMap<SwitchLabel, u32>,
    channels: Vec<ChannelDesc>,
    lookup: HashMap<(Endpoint, Endpoint), ChannelId>,
    roots: Vec<u32>,
}

impl Graph {
    /// Builds the full channel graph of `tree`.
    pub fn build(tree: MPortNTree) -> Self {
        let n = tree.n();
        let k = tree.k();
        let mut switch_labels = Vec::with_capacity(tree.num_switches());
        let mut switch_index = HashMap::with_capacity(tree.num_switches());
        let mut roots = Vec::new();

        // Enumerate switches level by level, starting from the leaves (the
        // leaf switch of every node, deduplicated) and walking parents.
        // Simpler and robust: enumerate labels directly per level.
        for level in 1..=n {
            let fixed_len = (n - level) as usize;
            let ups_len = (level - 1) as usize;
            // fixed digits: first digit radix m (if any), rest radix k;
            // ups digits: radix k.
            let fixed_count: usize = if fixed_len == 0 {
                1
            } else {
                tree.m() as usize * (k as usize).pow(fixed_len as u32 - 1)
            };
            let ups_count = (k as usize).pow(ups_len as u32);
            for fi in 0..fixed_count {
                let fixed = crate::labels::mixed_radix_decode(fi, fixed_len, tree.m(), k);
                for ui in 0..ups_count {
                    let ups = crate::labels::mixed_radix_decode(ui, ups_len, k, k);
                    let label = SwitchLabel {
                        fixed: fixed.clone(),
                        ups,
                    };
                    let idx = switch_labels.len() as u32;
                    if level == n {
                        roots.push(idx);
                    }
                    switch_index.insert(label.clone(), idx);
                    switch_labels.push(label);
                }
            }
        }
        debug_assert_eq!(switch_labels.len(), tree.num_switches());

        let mut channels = Vec::new();
        let mut lookup = HashMap::new();
        let mut add_link =
            |a: Endpoint, b: Endpoint, kind_ab: ChannelKind, kind_ba: ChannelKind| {
                let id_ab = ChannelId(channels.len() as u32);
                channels.push(ChannelDesc {
                    from: a,
                    to: b,
                    kind: kind_ab,
                });
                let id_ba = ChannelId(channels.len() as u32);
                channels.push(ChannelDesc {
                    from: b,
                    to: a,
                    kind: kind_ba,
                });
                lookup.insert((a, b), id_ab);
                lookup.insert((b, a), id_ba);
            };

        // Node <-> leaf-switch links.
        for node in 0..tree.num_nodes() {
            let label = NodeLabel::from_id(node, tree.m(), n);
            let leaf = SwitchLabel::leaf_of(&label);
            let sw = switch_index[&leaf];
            add_link(
                Endpoint::Node(node as u32),
                Endpoint::Switch(sw),
                ChannelKind::NodeToSwitch,
                ChannelKind::SwitchToNode,
            );
        }

        // Switch <-> switch links: every non-root switch has k up-ports.
        for (idx, label) in switch_labels.iter().enumerate() {
            if label.fixed.is_empty() {
                continue; // root
            }
            for u in 0..k {
                let parent = label.parent(u).expect("non-root has a parent");
                let p_idx = switch_index[&parent];
                add_link(
                    Endpoint::Switch(idx as u32),
                    Endpoint::Switch(p_idx),
                    ChannelKind::SwitchToSwitch,
                    ChannelKind::SwitchToSwitch,
                );
            }
        }

        Self {
            tree,
            switch_labels,
            switch_index,
            channels,
            lookup,
            roots,
        }
    }

    /// The tree descriptor this graph was built from.
    pub fn tree(&self) -> &MPortNTree {
        &self.tree
    }

    /// Total number of directed channels (`2·n·N` for an m-port n-tree).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Descriptor of channel `id`.
    pub fn channel(&self, id: ChannelId) -> &ChannelDesc {
        &self.channels[id.0 as usize]
    }

    /// The opposite direction of the same physical link.
    pub fn reverse(&self, id: ChannelId) -> ChannelId {
        ChannelId(id.0 ^ 1)
    }

    /// Label of switch index `idx`.
    pub fn switch_label(&self, idx: u32) -> &SwitchLabel {
        &self.switch_labels[idx as usize]
    }

    /// Switch indices of the root level.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Channel from endpoint `a` to adjacent endpoint `b`, if the link exists.
    pub fn channel_between(&self, a: Endpoint, b: Endpoint) -> Option<ChannelId> {
        self.lookup.get(&(a, b)).copied()
    }

    /// The deterministic up-port digit used when ascending from level `l`
    /// (1-based) toward a path shaped by `shape` (the destination label for
    /// node-to-node routes).
    ///
    /// The ascent reads the label's *trailing* digits (`p_n` first), in the
    /// spirit of Lin's multiple-LID / d-mod-k schemes: labels that share a
    /// long prefix (and therefore must share descent digits) still fan out
    /// across different ancestors, which keeps root load balanced even when
    /// the destination distribution is skewed toward one subtree. Trailing
    /// digits all have radix `m/2`, so the value is always a valid up-port.
    fn up_digit_with(&self, shape: &NodeLabel, l: u32, policy: AscentPolicy) -> u32 {
        let n = self.tree.n() as usize;
        match policy {
            AscentPolicy::TrailingDigits => {
                let idx = n - l as usize; // p_n for l=1, p_{n-1} for l=2, ...
                debug_assert!(idx >= 1, "ascent digits have radix m/2");
                shape.digits[idx]
            }
            AscentPolicy::MirrorDescent => {
                // The digit the descent will use at this level, folded into
                // the up-port range (index 0 has radix m).
                let idx = n - l as usize - 1;
                shape.digits[idx] % self.tree.k()
            }
        }
    }

    /// Deterministic Up*/Down* route between two distinct nodes: `h`
    /// up-links to the NCA (up-ports chosen from the destination address),
    /// then `h` down-links following the destination digits.
    ///
    /// Returns an empty route when `src == dst`.
    ///
    /// ```
    /// use cocnet_topology::{Graph, MPortNTree};
    /// let g = Graph::build(MPortNTree::new(4, 2)?);
    /// // Nodes 0 and 7 share no leaf switch: the route climbs to a root,
    /// // 2h = 4 channels in total.
    /// let route = g.route(0, 7)?;
    /// assert_eq!(route.nca_level, 2);
    /// assert_eq!(route.channels.len(), 4);
    /// # Ok::<(), cocnet_topology::TopologyError>(())
    /// ```
    pub fn route(&self, src: usize, dst: usize) -> Result<Route, TopologyError> {
        self.route_with_policy(src, dst, AscentPolicy::default())
    }

    /// [`Graph::route`] with an explicit ascent policy.
    pub fn route_with_policy(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_into(src, dst, policy, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_with_policy`]: clears `out`
    /// and writes the route's channels into it, returning the NCA level.
    /// The buffer's capacity is reused across calls, which is what keeps
    /// route-table interning and per-message adaptive routing off the
    /// allocator.
    pub fn route_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let h = self.tree.nca_level(src, dst)?;
        if h == 0 {
            return Ok(0);
        }
        let src_label = self.tree.node_label(src)?;
        let dst_label = self.tree.node_label(dst)?;

        // Ascend: node -> leaf -> ... -> NCA at level h.
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..h {
            let u = self.up_digit_with(&dst_label, l, policy);
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        // Descend: NCA -> ... -> leaf(dst) -> node.
        for l in (1..h).rev() {
            // Down to level l: new fixed digit is dst digit at index n-l-1.
            let d = dst_label.digits[(n - l - 1) as usize];
            let child = sw.child(d).expect("descending above the leaves");
            let next = Endpoint::Switch(self.switch_index[&child]);
            out.push(self.lookup[&(cur, next)]);
            sw = child;
            cur = next;
        }
        out.push(self.lookup[&(cur, Endpoint::Node(dst as u32))]);
        debug_assert_eq!(out.len(), 2 * h as usize);
        Ok(h)
    }

    /// Route from a node up to its deterministic exit root (used by
    /// inter-cluster messages leaving through an ECN1 tree): `n` links.
    ///
    /// The root choice is a function of the *source* address, spreading the
    /// exit traffic of different nodes across the `(m/2)^{n−1}` roots.
    pub fn route_to_root(&self, src: usize) -> Result<Route, TopologyError> {
        self.route_to_root_with_policy(src, AscentPolicy::default())
    }

    /// [`Graph::route_to_root`] with an explicit ascent policy.
    pub fn route_to_root_with_policy(
        &self,
        src: usize,
        policy: AscentPolicy,
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_to_root_into(src, policy, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_to_root_with_policy`]:
    /// clears `out`, writes the ascent channels, returns the root level.
    pub fn route_to_root_into(
        &self,
        src: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let src_label = self.tree.node_label(src)?;
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..n {
            let u = self.up_digit_with(&src_label, l, policy);
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        Ok(n)
    }

    /// Route from the deterministic entry root down to a node (used by
    /// inter-cluster messages entering through an ECN1 tree): the exact
    /// reverse of [`Graph::route_to_root`]`(dst)`, `n` links.
    pub fn route_from_root(&self, dst: usize) -> Result<Route, TopologyError> {
        self.route_from_root_with_policy(dst, AscentPolicy::default())
    }

    /// Adaptive variant of [`Graph::route_to_root`]: ascent digits supplied
    /// by the caller (missing ones fall back to the deterministic policy).
    pub fn route_to_root_adaptive(
        &self,
        src: usize,
        up_digits: &[u32],
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_to_root_adaptive_into(src, up_digits, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_to_root_adaptive`].
    pub fn route_to_root_adaptive_into(
        &self,
        src: usize,
        up_digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let src_label = self.tree.node_label(src)?;
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..n {
            let u = up_digits
                .get((l - 1) as usize)
                .map(|&d| d % self.tree.k())
                .unwrap_or_else(|| self.up_digit_with(&src_label, l, AscentPolicy::TrailingDigits));
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        Ok(n)
    }

    /// [`Graph::route_from_root`] with an explicit ascent policy.
    pub fn route_from_root_with_policy(
        &self,
        dst: usize,
        policy: AscentPolicy,
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_from_root_into(dst, policy, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_from_root_with_policy`]:
    /// the ascent is produced in place, then reversed channel by channel.
    pub fn route_from_root_into(
        &self,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        let nca_level = self.route_to_root_into(dst, policy, out)?;
        out.reverse();
        for c in out.iter_mut() {
            *c = self.reverse(*c);
        }
        Ok(nca_level)
    }

    /// Adaptive Up*/Down* route: like [`Graph::route`] but the ascent
    /// up-ports are taken from `up_digits` (one digit in `0..m/2` per
    /// ascent hop, `h−1` of them at most), as supplied by the caller —
    /// typically sampled uniformly per message, which models the oblivious
    /// flavour of adaptive wormhole routing (paper ref \[7\]) without
    /// making this crate depend on an RNG.
    ///
    /// Missing digits fall back to the deterministic policy; excess digits
    /// are ignored. Descent is fixed by the destination as always.
    pub fn route_adaptive(
        &self,
        src: usize,
        dst: usize,
        up_digits: &[u32],
    ) -> Result<Route, TopologyError> {
        let mut channels = Vec::new();
        let nca_level = self.route_adaptive_into(src, dst, up_digits, &mut channels)?;
        Ok(Route {
            channels,
            nca_level,
        })
    }

    /// Allocation-free form of [`Graph::route_adaptive`].
    pub fn route_adaptive_into(
        &self,
        src: usize,
        dst: usize,
        up_digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        out.clear();
        let n = self.tree.n();
        let h = self.tree.nca_level(src, dst)?;
        if h == 0 {
            return Ok(0);
        }
        let src_label = self.tree.node_label(src)?;
        let dst_label = self.tree.node_label(dst)?;
        let mut sw = SwitchLabel::leaf_of(&src_label);
        let mut cur = Endpoint::Switch(self.switch_index[&sw]);
        out.push(self.lookup[&(Endpoint::Node(src as u32), cur)]);
        for l in 1..h {
            let u = up_digits
                .get((l - 1) as usize)
                .map(|&d| d % self.tree.k())
                .unwrap_or_else(|| self.up_digit_with(&dst_label, l, AscentPolicy::TrailingDigits));
            let parent = sw.parent(u).expect("ascending below the root");
            let next = Endpoint::Switch(self.switch_index[&parent]);
            out.push(self.lookup[&(cur, next)]);
            sw = parent;
            cur = next;
        }
        for l in (1..h).rev() {
            let d = dst_label.digits[(n - l - 1) as usize];
            let child = sw.child(d).expect("descending above the leaves");
            let next = Endpoint::Switch(self.switch_index[&child]);
            out.push(self.lookup[&(cur, next)]);
            sw = child;
            cur = next;
        }
        out.push(self.lookup[&(cur, Endpoint::Node(dst as u32))]);
        Ok(h)
    }

    /// Structural self-check: channel count, port budgets, reverse pairing.
    /// Cheap enough to run in tests on every topology used.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.tree.n() as usize;
        let nodes = self.tree.num_nodes();
        let expect = 2 * n * nodes;
        if self.num_channels() != expect {
            return Err(format!(
                "channel count {} != 2nN = {expect}",
                self.num_channels()
            ));
        }
        // Reverse pairing: reverse(reverse(c)) == c, endpoints mirrored.
        for i in 0..self.channels.len() {
            let id = ChannelId(i as u32);
            let rev = self.reverse(id);
            let a = self.channel(id);
            let b = self.channel(rev);
            if a.from != b.to || a.to != b.from {
                return Err(format!("channel {i} and its reverse are not mirrored"));
            }
        }
        // Per-switch port budget: down + up degree <= m (root: == m down).
        let mut down = vec![0u32; self.switch_labels.len()];
        let mut up = vec![0u32; self.switch_labels.len()];
        for ch in &self.channels {
            if let (Endpoint::Switch(s), Endpoint::Switch(t)) = (ch.from, ch.to) {
                let ls = self.switch_labels[s as usize].level(self.tree.n());
                let lt = self.switch_labels[t as usize].level(self.tree.n());
                if ls < lt {
                    up[s as usize] += 1;
                } else {
                    down[s as usize] += 1;
                }
            } else if let (Endpoint::Switch(s), Endpoint::Node(_)) = (ch.from, ch.to) {
                down[s as usize] += 1;
            }
        }
        for (i, label) in self.switch_labels.iter().enumerate() {
            let level = label.level(self.tree.n());
            let is_root = level == self.tree.n();
            // Roots use all m ports downward; in a single-level tree the
            // sole switch is both root and leaf, also with m node ports.
            let expect_down = if is_root {
                self.tree.m()
            } else {
                self.tree.k()
            };
            let expect_up = if is_root { 0 } else { self.tree.k() };
            if down[i] != expect_down || up[i] != expect_up {
                return Err(format!(
                    "switch {i} (level {level}) has {} down / {} up ports, expected {} / {}",
                    down[i], up[i], expect_down, expect_up
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(m: u32, n: u32) -> Graph {
        Graph::build(MPortNTree::new(m, n).unwrap())
    }

    #[test]
    fn structure_validates_for_paper_trees() {
        for (m, n) in [(4, 1), (4, 2), (4, 3), (4, 4), (8, 1), (8, 2), (8, 3)] {
            let g = graph(m, n);
            g.validate().unwrap_or_else(|e| panic!("m={m} n={n}: {e}"));
        }
    }

    #[test]
    fn channel_count_is_2nn() {
        let g = graph(8, 2);
        assert_eq!(g.num_channels(), 2 * 2 * 32);
    }

    #[test]
    fn route_length_is_twice_nca_level() {
        let g = graph(4, 3);
        let t = g.tree();
        for src in 0..t.num_nodes() {
            for dst in 0..t.num_nodes() {
                let r = g.route(src, dst).unwrap();
                let h = t.nca_level(src, dst).unwrap();
                assert_eq!(r.channels.len(), 2 * h as usize, "{src}->{dst}");
                assert_eq!(r.nca_level, h);
            }
        }
    }

    #[test]
    fn route_is_connected_and_valley_free() {
        // Channels must chain (to == next.from), start at src, end at dst,
        // and switch levels must rise to the NCA then fall (Up*/Down*).
        let g = graph(8, 3);
        let t = *g.tree();
        let n = t.num_nodes();
        for (src, dst) in [(0, n - 1), (3, 77), (100, 5), (1, 0), (42, 43)] {
            let r = g.route(src, dst).unwrap();
            let first = g.channel(r.channels[0]);
            assert_eq!(first.from, Endpoint::Node(src as u32));
            let last = g.channel(*r.channels.last().unwrap());
            assert_eq!(last.to, Endpoint::Node(dst as u32));
            let mut levels = Vec::new();
            for w in r.channels.windows(2) {
                let a = g.channel(w[0]);
                let b = g.channel(w[1]);
                assert_eq!(a.to, b.from, "path must chain");
                if let Endpoint::Switch(s) = a.to {
                    levels.push(g.switch_label(s).level(t.n()));
                }
            }
            // Valley-free: strictly increasing then strictly decreasing.
            let peak = levels.iter().position(|&l| l == r.nca_level).unwrap();
            assert!(levels[..peak].windows(2).all(|w| w[1] == w[0] + 1));
            assert!(levels[peak..].windows(2).all(|w| w[1] == w[0] - 1));
        }
    }

    #[test]
    fn route_same_node_is_empty() {
        let g = graph(4, 2);
        let r = g.route(3, 3).unwrap();
        assert!(r.channels.is_empty());
        assert_eq!(r.nca_level, 0);
    }

    #[test]
    fn route_deterministic() {
        let g = graph(8, 2);
        let a = g.route(1, 20).unwrap();
        let b = g.route(1, 20).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn route_to_root_has_n_links_and_ends_at_root() {
        let g = graph(4, 3);
        for src in 0..g.tree().num_nodes() {
            let r = g.route_to_root(src).unwrap();
            assert_eq!(r.channels.len(), 3);
            let last = g.channel(*r.channels.last().unwrap());
            if let Endpoint::Switch(s) = last.to {
                assert_eq!(g.switch_label(s).level(3), 3, "must end at a root");
            } else {
                panic!("route_to_root must end at a switch");
            }
        }
    }

    #[test]
    fn route_from_root_mirrors_route_to_root() {
        let g = graph(4, 2);
        for dst in 0..g.tree().num_nodes() {
            let up = g.route_to_root(dst).unwrap();
            let down = g.route_from_root(dst).unwrap();
            assert_eq!(down.channels.len(), up.channels.len());
            let first = g.channel(down.channels[0]);
            if let Endpoint::Switch(s) = first.from {
                assert_eq!(g.switch_label(s).level(2), 2);
            } else {
                panic!("route_from_root must start at a switch");
            }
            let last = g.channel(*down.channels.last().unwrap());
            assert_eq!(last.to, Endpoint::Node(dst as u32));
        }
    }

    #[test]
    fn exit_roots_spread_across_sources() {
        // With k^(n-1) = 4 roots and 32 nodes, the per-source deterministic
        // exit root must hit more than one distinct root.
        let g = graph(8, 2);
        let mut seen = std::collections::HashSet::new();
        for src in 0..g.tree().num_nodes() {
            let r = g.route_to_root(src).unwrap();
            if let Endpoint::Switch(s) = g.channel(*r.channels.last().unwrap()).to {
                seen.insert(s);
            }
        }
        assert_eq!(seen.len(), g.roots().len(), "all roots should be used");
    }

    #[test]
    fn reverse_is_involutive_and_mirrored() {
        let g = graph(4, 2);
        for i in 0..g.num_channels() {
            let id = ChannelId(i as u32);
            assert_eq!(g.reverse(g.reverse(id)), id);
            let a = g.channel(id);
            let b = g.channel(g.reverse(id));
            assert_eq!(a.from, b.to);
            assert_eq!(a.to, b.from);
        }
    }

    #[test]
    fn adaptive_routes_are_valid_for_any_digits() {
        let g = graph(8, 3);
        let t = *g.tree();
        for (src, dst) in [(0usize, 127usize), (5, 9), (64, 1)] {
            let h = t.nca_level(src, dst).unwrap();
            // Every combination of up digits yields a valid chained route
            // of the same length ending at the destination.
            for digits in [[0u32, 0], [3, 1], [2, 3], [1, 2]] {
                let r = g.route_adaptive(src, dst, &digits).unwrap();
                assert_eq!(r.channels.len(), 2 * h as usize);
                for w in r.channels.windows(2) {
                    assert_eq!(g.channel(w[0]).to, g.channel(w[1]).from);
                }
                assert_eq!(
                    g.channel(*r.channels.last().unwrap()).to,
                    Endpoint::Node(dst as u32)
                );
            }
        }
    }

    #[test]
    fn adaptive_with_no_digits_matches_deterministic() {
        let g = graph(4, 3);
        for (src, dst) in [(0usize, 15usize), (3, 12), (7, 8)] {
            let det = g.route(src, dst).unwrap();
            let ada = g.route_adaptive(src, dst, &[]).unwrap();
            assert_eq!(det, ada);
        }
    }

    #[test]
    fn adaptive_digits_select_distinct_ncas() {
        // Different up digits must reach different root switches for a
        // maximal-distance pair.
        let g = graph(8, 2);
        let mut roots = std::collections::HashSet::new();
        for u in 0..4u32 {
            let r = g.route_adaptive(0, 31, &[u]).unwrap();
            // The NCA is the endpoint of the last ascent channel.
            let nca = g.channel(r.channels[1]).to;
            roots.insert(format!("{nca:?}"));
        }
        assert_eq!(roots.len(), 4);
    }

    #[test]
    fn into_variants_match_allocating_routes() {
        // The `_into` forms exist so hot paths can reuse one buffer; they
        // must emit exactly what the allocating forms return, including
        // after the buffer has held a longer previous route.
        let g = graph(8, 3);
        let mut buf = Vec::new();
        for (src, dst) in [(0usize, 127usize), (5, 9), (64, 1), (3, 3)] {
            let r = g.route(src, dst).unwrap();
            let h = g
                .route_into(src, dst, AscentPolicy::default(), &mut buf)
                .unwrap();
            assert_eq!(h, r.nca_level);
            assert_eq!(buf, r.channels);
        }
        for src in [0usize, 31, 77] {
            let up = g.route_to_root(src).unwrap();
            let h = g
                .route_to_root_into(src, AscentPolicy::default(), &mut buf)
                .unwrap();
            assert_eq!(h, up.nca_level);
            assert_eq!(buf, up.channels);
            let down = g.route_from_root(src).unwrap();
            g.route_from_root_into(src, AscentPolicy::default(), &mut buf)
                .unwrap();
            assert_eq!(buf, down.channels);
            let ada = g.route_to_root_adaptive(src, &[1, 2]).unwrap();
            g.route_to_root_adaptive_into(src, &[1, 2], &mut buf)
                .unwrap();
            assert_eq!(buf, ada.channels);
        }
        let ada = g.route_adaptive(0, 127, &[3, 1]).unwrap();
        g.route_adaptive_into(0, 127, &[3, 1], &mut buf).unwrap();
        assert_eq!(buf, ada.channels);
    }

    #[test]
    fn kinds_are_consistent() {
        let g = graph(4, 2);
        for i in 0..g.num_channels() {
            let ch = g.channel(ChannelId(i as u32));
            match (ch.from, ch.to) {
                (Endpoint::Node(_), Endpoint::Switch(_)) => {
                    assert_eq!(ch.kind, ChannelKind::NodeToSwitch)
                }
                (Endpoint::Switch(_), Endpoint::Node(_)) => {
                    assert_eq!(ch.kind, ChannelKind::SwitchToNode)
                }
                (Endpoint::Switch(_), Endpoint::Switch(_)) => {
                    assert_eq!(ch.kind, ChannelKind::SwitchToSwitch)
                }
                _ => panic!("node-to-node channel cannot exist"),
            }
        }
    }
}
