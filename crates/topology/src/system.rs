//! Heterogeneous cluster-of-clusters system specification (paper Fig. 1).
//!
//! A [`SystemSpec`] captures everything the analytical model and the
//! simulator need to know about a system: the common switch arity `m`, one
//! [`ClusterSpec`] per cluster (tree height `n_i` plus the characteristics
//! of its ICN1 and ECN1 networks), and the characteristics of the global
//! ICN2 tree. Cluster-size heterogeneity is expressed by different `n_i`
//! (assumption 3); network heterogeneity by different characteristics per
//! network (assumption 5).

use crate::error::TopologyError;
use crate::netchar::NetworkCharacteristics;
use crate::topo::TopoSpec;
use crate::tree::MPortNTree;
use serde::{Deserialize, Serialize};

/// One cluster: compute nodes joined by its own intra-cluster (ICN1) and
/// inter-cluster (ECN1) networks — by default the paper's m-port
/// `n`-tree, optionally a torus (see [`TopoSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ClusterSpec {
    /// Tree height `n_i`; a tree cluster has `2(m/2)^{n_i}` nodes. Unused
    /// (and required to stay 0) for torus clusters, whose node count is
    /// the product of their dimension extents.
    #[serde(default)]
    pub n: u32,
    /// Characteristics of the intra-cluster network ICN1(i).
    pub icn1: NetworkCharacteristics,
    /// Characteristics of the inter-cluster access network ECN1(i).
    pub ecn1: NetworkCharacteristics,
    /// Topology backend of this cluster's ICN1/ECN1 (default: tree).
    #[serde(default)]
    pub topology: TopoSpec,
}

/// A complete cluster-of-clusters system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SystemSpec {
    /// Switch arity `m`, shared by all trees in the system.
    pub m: u32,
    /// Per-cluster specifications (length `C`).
    pub clusters: Vec<ClusterSpec>,
    /// Characteristics of the global inter-cluster network ICN2.
    pub icn2: NetworkCharacteristics,
    /// Topology backend of the global ICN2 network, whose "nodes" are the
    /// `C` concentrator/dispatchers (default: tree).
    #[serde(default)]
    pub topology: TopoSpec,
}

impl SystemSpec {
    /// Creates and validates a system spec.
    ///
    /// ```
    /// use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
    /// let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02)?;
    /// let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01)?;
    /// let cluster = |n| ClusterSpec { n, icn1: net1, ecn1: net2, topology: Default::default() };
    /// // Four m=4 clusters: two of 8 nodes (n=2), two of 16 (n=3).
    /// let spec = SystemSpec::new(4, vec![cluster(2), cluster(2), cluster(3), cluster(3)], net1)?;
    /// assert_eq!(spec.total_nodes(), 48);
    /// assert_eq!(spec.icn2_height()?, 1); // C=4 = 2·2^1
    /// # Ok::<(), cocnet_topology::TopologyError>(())
    /// ```
    pub fn new(
        m: u32,
        clusters: Vec<ClusterSpec>,
        icn2: NetworkCharacteristics,
    ) -> Result<Self, TopologyError> {
        let spec = Self {
            m,
            clusters,
            icn2,
            topology: TopoSpec::Tree,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates arity, cluster count, per-cluster trees and every
    /// network's physical characteristics (deserialized specs bypass the
    /// validating constructors); checks that the ICN2 tree height exists
    /// for `C` clusters.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.m < 2 || !self.m.is_multiple_of(2) {
            return Err(TopologyError::BadPortCount { m: self.m });
        }
        if self.clusters.len() < 2 {
            return Err(TopologyError::TooFewClusters {
                c: self.clusters.len(),
            });
        }
        for c in &self.clusters {
            match c.topology {
                TopoSpec::Tree => {
                    MPortNTree::new(self.m, c.n)?;
                }
                TopoSpec::Torus(_) => {
                    // A torus cluster is shaped entirely by its dims
                    // (validated when the shape was built); a stray tree
                    // height is a config mistake, not silently ignored.
                    if c.n != 0 {
                        return Err(TopologyError::UnsupportedByBackend {
                            backend: "torus",
                            what: "a tree height n (torus clusters are shaped by \"dims\")",
                        });
                    }
                }
            }
            c.icn1.validate()?;
            c.ecn1.validate()?;
        }
        self.icn2.validate()?;
        match self.topology {
            TopoSpec::Tree => {
                self.icn2_height()?;
            }
            TopoSpec::Torus(shape) => {
                if shape.num_nodes() != self.clusters.len() {
                    return Err(TopologyError::BadTorusShape {
                        what: format!(
                            "ICN2 torus has {} nodes but the system has {} clusters",
                            shape.num_nodes(),
                            self.clusters.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether every network in the system (all ICN1/ECN1 plus ICN2) uses
    /// the paper's tree backend — the shapes the analytical model covers.
    pub fn is_all_tree(&self) -> bool {
        self.topology.is_tree() && self.clusters.iter().all(|c| c.topology.is_tree())
    }

    /// Checks that every network supports engine-level adaptive routing
    /// (free-digit draws), which only the tree backend offers; reports
    /// [`TopologyError::UnsupportedByBackend`] otherwise.
    pub fn adaptive_routing_supported(&self) -> Result<(), TopologyError> {
        for c in &self.clusters {
            if !c.topology.is_tree() {
                return Err(TopologyError::UnsupportedByBackend {
                    backend: c.topology.backend_name(),
                    what: "engine-level adaptive routing",
                });
            }
        }
        if !self.topology.is_tree() {
            return Err(TopologyError::UnsupportedByBackend {
                backend: self.topology.backend_name(),
                what: "engine-level adaptive routing",
            });
        }
        Ok(())
    }

    /// Number of clusters `C`.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Tree descriptor of cluster `i`'s ICN1/ECN1 (both are m-port
    /// `n_i`-trees over the same `N_i` nodes), or
    /// [`TopologyError::UnsupportedByBackend`] when the cluster uses a
    /// non-tree backend.
    pub fn cluster_tree_checked(&self, i: usize) -> Result<MPortNTree, TopologyError> {
        match self.clusters[i].topology {
            TopoSpec::Tree => MPortNTree::new(self.m, self.clusters[i].n),
            TopoSpec::Torus(_) => Err(TopologyError::UnsupportedByBackend {
                backend: "torus",
                what: "an m-port n-tree descriptor",
            }),
        }
    }

    /// Tree descriptor of cluster `i`'s ICN1/ECN1.
    ///
    /// Tree-only convenience kept for the analytical model, which never
    /// sees non-tree specs (they are reported as sim-only coverage
    /// upstream); panics on a non-tree cluster — backend-agnostic callers
    /// use [`SystemSpec::cluster_tree_checked`].
    pub fn cluster_tree(&self, i: usize) -> MPortNTree {
        self.cluster_tree_checked(i)
            .expect("validated at construction (tree backend)")
    }

    /// Number of nodes in cluster `i`: `N_i = 2(m/2)^{n_i}` for a tree
    /// cluster, the product of the dimension extents for a torus cluster.
    pub fn cluster_nodes(&self, i: usize) -> usize {
        match self.clusters[i].topology {
            TopoSpec::Tree => self.cluster_tree(i).num_nodes(),
            TopoSpec::Torus(shape) => shape.num_nodes(),
        }
    }

    /// Total nodes in the system, `N = Σ N_i`.
    pub fn total_nodes(&self) -> usize {
        (0..self.num_clusters())
            .map(|i| self.cluster_nodes(i))
            .sum()
    }

    /// Tree height `n_c` of the ICN2 network: the solution of
    /// `C = 2(m/2)^{n_c}`. Errors if `C` is not exactly tree-sized, or if
    /// ICN2 uses a non-tree backend (which has no tree height).
    pub fn icn2_height(&self) -> Result<u32, TopologyError> {
        if !self.topology.is_tree() {
            return Err(TopologyError::UnsupportedByBackend {
                backend: self.topology.backend_name(),
                what: "an ICN2 tree height",
            });
        }
        let c = self.clusters.len();
        let k = (self.m / 2) as usize;
        let mut size = 2usize;
        let mut n_c = 0u32;
        while size < c {
            size = size
                .checked_mul(k)
                .ok_or(TopologyError::TooLarge { what: "ICN2" })?;
            n_c += 1;
            if k == 1 && size < c {
                // k == 1 never grows; bail out.
                return Err(TopologyError::ClusterCountNotTreeSized { c, m: self.m });
            }
        }
        if size == c && n_c > 0 {
            Ok(n_c)
        } else {
            Err(TopologyError::ClusterCountNotTreeSized { c, m: self.m })
        }
    }

    /// Tree descriptor of the ICN2 network (an m-port `n_c`-tree whose
    /// "nodes" are the `C` concentrator/dispatchers).
    pub fn icn2_tree(&self) -> MPortNTree {
        MPortNTree::new(self.m, self.icn2_height().expect("validated")).expect("validated")
    }

    /// Conservative-synchronization lookahead of the two-level structure:
    /// the smallest single-channel crossing time on any inter-cluster
    /// path (ECN1 ascent/descent channels and the ICN2 crossing). A
    /// message leaving one cluster for another cannot affect the
    /// destination cluster sooner than this after entering the
    /// inter-cluster fabric, so a sharded simulator may advance each
    /// cluster independently by this much past the global frontier
    /// without missing a causal dependency (classic Chandy–Misra/YAWNS
    /// lookahead). Strictly positive for every valid spec.
    pub fn intercluster_lookahead(&self, flit_bytes: f64) -> f64 {
        let mut la = self.icn2.t_cn(flit_bytes).min(self.icn2.t_cs(flit_bytes));
        for c in &self.clusters {
            la = la.min(c.ecn1.t_cn(flit_bytes)).min(c.ecn1.t_cs(flit_bytes));
        }
        la
    }

    /// Probability that a message born in cluster `i` leaves the cluster,
    /// Eq. (2): `U_i = 1 − (N_i − 1)/(N − 1)` (uniform destinations).
    pub fn outgoing_probability(&self, i: usize) -> f64 {
        let n_i = self.cluster_nodes(i) as f64;
        let n = self.total_nodes() as f64;
        1.0 - (n_i - 1.0) / (n - 1.0)
    }

    /// The relaxing factor of Eq. (28) for cluster `i`:
    /// `δ_i = β_{ICN2} / β_{ECN1(i)}` — the ICN2/ECN1 bandwidth ratio used
    /// to discount waiting on ICN2 stages.
    pub fn relaxing_factor(&self, i: usize) -> f64 {
        self.icn2.beta() / self.clusters[i].ecn1.beta()
    }

    /// Global node index ranges: cluster `i` owns nodes
    /// `offset(i) .. offset(i) + N_i` in the flattened node numbering used
    /// by the simulator and workloads.
    pub fn node_offset(&self, i: usize) -> usize {
        (0..i).map(|j| self.cluster_nodes(j)).sum()
    }

    /// Maps a flat node index to `(cluster, local index)`.
    pub fn locate_node(&self, flat: usize) -> Option<(usize, usize)> {
        let mut off = 0;
        for i in 0..self.num_clusters() {
            let sz = self.cluster_nodes(i);
            if flat < off + sz {
                return Some((i, flat - off));
            }
            off += sz;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netchar(bw: f64) -> NetworkCharacteristics {
        NetworkCharacteristics::new(bw, 0.01, 0.02).unwrap()
    }

    /// Builds a toy heterogeneous system: m=4, clusters of heights 1, 1, 2, 2.
    fn toy() -> SystemSpec {
        let c = |n| ClusterSpec {
            n,
            icn1: netchar(500.0),
            ecn1: netchar(250.0),
            topology: TopoSpec::Tree,
        };
        SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], netchar(500.0)).unwrap()
    }

    /// A torus cluster of the given dims (n stays 0 by contract).
    fn torus_cluster(dims: &[u32]) -> ClusterSpec {
        ClusterSpec {
            n: 0,
            icn1: netchar(500.0),
            ecn1: netchar(250.0),
            topology: TopoSpec::Torus(crate::topo::TorusShape::new(dims).unwrap()),
        }
    }

    #[test]
    fn node_counts_and_offsets() {
        let s = toy();
        assert_eq!(s.num_clusters(), 4);
        assert_eq!(s.cluster_nodes(0), 4);
        assert_eq!(s.cluster_nodes(2), 8);
        assert_eq!(s.total_nodes(), 4 + 4 + 8 + 8);
        assert_eq!(s.node_offset(0), 0);
        assert_eq!(s.node_offset(2), 8);
        assert_eq!(s.locate_node(0), Some((0, 0)));
        assert_eq!(s.locate_node(9), Some((2, 1)));
        assert_eq!(s.locate_node(23), Some((3, 7)));
        assert_eq!(s.locate_node(24), None);
    }

    #[test]
    fn icn2_height_solves_cluster_count() {
        // C=4, m=4: 2*2^1 = 4 -> n_c = 1.
        assert_eq!(toy().icn2_height().unwrap(), 1);
    }

    #[test]
    fn intercluster_lookahead_is_min_crossing_time() {
        let s = toy();
        let la = s.intercluster_lookahead(256.0);
        assert!(la > 0.0, "lookahead must be strictly positive");
        assert!(la <= s.icn2.t_cn(256.0));
        assert!(la <= s.clusters[0].ecn1.t_cs(256.0));
        // The slowest network bounds it from below: it is a min over
        // concrete channel times, not an average.
        let floor = s
            .clusters
            .iter()
            .map(|c| c.ecn1.t_cn(256.0).min(c.ecn1.t_cs(256.0)))
            .fold(s.icn2.t_cn(256.0).min(s.icn2.t_cs(256.0)), f64::min);
        assert_eq!(la, floor);
    }

    #[test]
    fn paper_organizations_icn2_heights() {
        let mk = |m: u32, heights: &[u32]| {
            let clusters: Vec<ClusterSpec> = heights
                .iter()
                .map(|&n| ClusterSpec {
                    n,
                    icn1: netchar(500.0),
                    ecn1: netchar(250.0),
                    topology: TopoSpec::Tree,
                })
                .collect();
            SystemSpec::new(m, clusters, netchar(500.0)).unwrap()
        };
        // N=1120: C=32, m=8 -> 2*4^2 = 32 -> n_c = 2.
        let heights: Vec<u32> = std::iter::repeat_n(1, 12)
            .chain(std::iter::repeat_n(2, 16))
            .chain(std::iter::repeat_n(3, 4))
            .collect();
        let s = mk(8, &heights);
        assert_eq!(s.total_nodes(), 1120);
        assert_eq!(s.icn2_height().unwrap(), 2);

        // N=544: C=16, m=4 -> 2*2^3 = 16 -> n_c = 3.
        let heights: Vec<u32> = std::iter::repeat_n(3, 8)
            .chain(std::iter::repeat_n(4, 3))
            .chain(std::iter::repeat_n(5, 5))
            .collect();
        let s = mk(4, &heights);
        assert_eq!(s.total_nodes(), 544);
        assert_eq!(s.icn2_height().unwrap(), 3);
    }

    #[test]
    fn torus_clusters_validate_and_count_nodes_by_dims() {
        let spec = SystemSpec::new(
            4,
            vec![
                torus_cluster(&[4, 4]),
                torus_cluster(&[4, 4]),
                torus_cluster(&[2, 2, 2]),
                torus_cluster(&[2, 2, 2]),
            ],
            netchar(500.0),
        )
        .unwrap();
        assert_eq!(spec.cluster_nodes(0), 16);
        assert_eq!(spec.cluster_nodes(2), 8);
        assert_eq!(spec.total_nodes(), 48);
        assert_eq!(spec.locate_node(17), Some((1, 1)));
        assert!(matches!(
            spec.cluster_tree_checked(0),
            Err(TopologyError::UnsupportedByBackend { .. })
        ));
        assert!(matches!(
            spec.adaptive_routing_supported(),
            Err(TopologyError::UnsupportedByBackend { .. })
        ));
        assert!(!spec.is_all_tree());
        assert!(toy().is_all_tree());
        toy().adaptive_routing_supported().unwrap();
    }

    #[test]
    fn torus_cluster_with_tree_height_is_rejected() {
        let mut bad = torus_cluster(&[4, 4]);
        bad.n = 2;
        let err = SystemSpec::new(4, vec![bad, torus_cluster(&[4, 4])], netchar(1.0)).unwrap_err();
        assert!(matches!(err, TopologyError::UnsupportedByBackend { .. }));
    }

    #[test]
    fn torus_icn2_must_match_cluster_count() {
        let c = |n| ClusterSpec {
            n,
            icn1: netchar(500.0),
            ecn1: netchar(250.0),
            topology: TopoSpec::Tree,
        };
        let mut spec = SystemSpec::new(4, vec![c(1), c(1), c(1), c(1)], netchar(500.0)).unwrap();
        spec.topology = TopoSpec::Torus(crate::topo::TorusShape::new(&[2, 2]).unwrap());
        spec.validate().unwrap();
        assert!(!spec.is_all_tree());
        assert!(matches!(
            spec.icn2_height(),
            Err(TopologyError::UnsupportedByBackend { .. })
        ));
        spec.topology = TopoSpec::Torus(crate::topo::TorusShape::new(&[2, 3]).unwrap());
        assert!(matches!(
            spec.validate(),
            Err(TopologyError::BadTorusShape { .. })
        ));
    }

    #[test]
    fn rejects_non_tree_sized_cluster_counts() {
        let c = ClusterSpec {
            n: 1,
            icn1: netchar(1.0),
            ecn1: netchar(1.0),
            topology: TopoSpec::Tree,
        };
        // C=3 with m=4: 2*2^x never equals 3.
        let err = SystemSpec::new(4, vec![c; 3], netchar(1.0)).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::ClusterCountNotTreeSized { .. }
        ));
        // C=1 rejected outright.
        let err = SystemSpec::new(4, vec![c; 1], netchar(1.0)).unwrap_err();
        assert!(matches!(err, TopologyError::TooFewClusters { .. }));
    }

    #[test]
    fn outgoing_probability_matches_eq2() {
        let s = toy(); // N = 24
                       // Cluster 0 has 4 nodes: U = 1 - 3/23.
        assert!((s.outgoing_probability(0) - (1.0 - 3.0 / 23.0)).abs() < 1e-12);
        // Bigger clusters keep more traffic local.
        assert!(s.outgoing_probability(2) < s.outgoing_probability(0));
    }

    #[test]
    fn relaxing_factor_is_bandwidth_ratio() {
        let s = toy();
        // β_ICN2 / β_ECN1 = (1/500)/(1/250) = 0.5.
        assert!((s.relaxing_factor(0) - 0.5).abs() < 1e-12);
    }
}
