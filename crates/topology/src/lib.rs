//! m-port n-tree fat-tree topologies and heterogeneous cluster-of-clusters
//! system specifications.
//!
//! This crate provides the *structural* substrate of the cocnet toolkit:
//!
//! * [`tree::MPortNTree`] — the m-port n-tree topology of Lin (ref \[17\] of
//!   the paper): `2(m/2)^n` processing nodes, `(2n−1)(m/2)^{n−1}` switches,
//!   with label algebra, nearest-common-ancestor levels and hop statistics.
//! * [`graph::Graph`] — an explicit channel-level wiring of a tree with
//!   deterministic Up*/Down* routing (refs \[19, 20\]), used by the
//!   discrete-event simulator.
//! * [`system::SystemSpec`] — the heterogeneous cluster-of-clusters system
//!   of the paper's Fig. 1: `C` clusters, per-cluster ICN1/ECN1 trees with
//!   individual network characteristics, and a global ICN2 tree joined by
//!   concentrator/dispatchers.
//! * [`netchar::NetworkCharacteristics`] — bandwidth/latency parameters and
//!   the service-time formulas of Eqs. (11)–(12).
//! * [`topo::Topology`] — the pluggable routing-backend trait ([`Graph`] and
//!   [`torus::Torus`] implement it), the consolidated [`topo::RouteQuery`]
//!   entrypoint, and the serialisable [`topo::TopoSpec`] backend selector.
//! * [`torus::Torus`] — a 2D/3D torus backend with dimension-order routing.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod graph;
pub mod labels;
pub mod metrics;
pub mod netchar;
pub mod system;
pub mod topo;
pub mod torus;
pub mod tree;

pub use error::TopologyError;
pub use graph::{AscentPolicy, ChannelId, ChannelKind, Endpoint, FaultSet, Graph, Route};
pub use labels::{NodeLabel, SwitchLabel};
pub use metrics::TreeMetrics;
pub use netchar::NetworkCharacteristics;
pub use system::{ClusterSpec, SystemSpec};
pub use topo::{AnyTopology, RouteMode, RouteQuery, TopoSpec, Topology, TorusShape};
pub use torus::Torus;
pub use tree::MPortNTree;
