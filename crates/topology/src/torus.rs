//! 2D/3D torus topology backend with dimension-order routing.
//!
//! A [`Torus`] places one router ("switch") per processing node and links
//! routers along each dimension with wrap-around. Routing is classic
//! deterministic dimension-order (DOR): correct one coordinate at a time,
//! in ascending dimension order, always around the shorter side of the
//! ring (ties go the positive direction). The adaptive variant lets one
//! caller-supplied digit rotate the dimension order; the fault-avoiding
//! variant searches the bounded candidate family of (dimension rotation ×
//! per-dimension direction flip) minimal-or-wrapped paths.
//!
//! The channel numbering honours the layout contract of
//! [`crate::topo::Topology`]: node↔router pairs first (`2·i` injection,
//! `2·i + 1` ejection), then one even/odd pair per (router, dimension)
//! for the positive-direction link and its reverse — `reverse == id ^ 1`
//! throughout.

use crate::error::TopologyError;
use crate::graph::{AscentPolicy, ChannelDesc, ChannelId, ChannelKind, Endpoint, FaultSet};
use crate::topo::{Topology, TorusShape};

/// A 2D/3D torus with all channels materialised.
#[derive(Debug, Clone)]
pub struct Torus {
    shape: TorusShape,
    strides: [usize; 3],
    channels: Vec<ChannelDesc>,
}

impl Torus {
    /// Builds the full channel graph of `shape`.
    pub fn build(shape: TorusShape) -> Self {
        let n = shape.num_nodes();
        let ndims = shape.ndims();
        let mut strides = [1usize; 3];
        for d in 1..ndims {
            strides[d] = strides[d - 1] * shape.dims()[d - 1] as usize;
        }
        let mut channels = Vec::with_capacity(2 * n * (1 + ndims));
        for v in 0..n as u32 {
            channels.push(ChannelDesc {
                from: Endpoint::Node(v),
                to: Endpoint::Switch(v),
                kind: ChannelKind::NodeToSwitch,
            });
            channels.push(ChannelDesc {
                from: Endpoint::Switch(v),
                to: Endpoint::Node(v),
                kind: ChannelKind::SwitchToNode,
            });
        }
        for v in 0..n {
            for d in 0..ndims {
                let u = Self::neighbor(&shape, &strides, v, d, true);
                channels.push(ChannelDesc {
                    from: Endpoint::Switch(v as u32),
                    to: Endpoint::Switch(u as u32),
                    kind: ChannelKind::SwitchToSwitch,
                });
                channels.push(ChannelDesc {
                    from: Endpoint::Switch(u as u32),
                    to: Endpoint::Switch(v as u32),
                    kind: ChannelKind::SwitchToSwitch,
                });
            }
        }
        Self {
            shape,
            strides,
            channels,
        }
    }

    /// The shape this torus was built from.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Coordinate of node `v` along dimension `d`.
    pub fn coord(&self, v: usize, d: usize) -> usize {
        (v / self.strides[d]) % self.shape.dims()[d] as usize
    }

    /// The gateway node of `v`: its projection onto the `coord[0] == 0`
    /// hyperplane, where this cluster's concentrator/dispatcher attaches.
    pub fn gateway_of(&self, v: usize) -> usize {
        v - self.coord(v, 0) * self.strides[0]
    }

    fn neighbor(shape: &TorusShape, strides: &[usize; 3], v: usize, d: usize, plus: bool) -> usize {
        let extent = shape.dims()[d] as usize;
        let c = (v / strides[d]) % extent;
        if plus {
            if c + 1 < extent {
                v + strides[d]
            } else {
                v - c * strides[d]
            }
        } else if c > 0 {
            v - strides[d]
        } else {
            v + (extent - 1) * strides[d]
        }
    }

    fn next(&self, v: usize, d: usize) -> usize {
        Self::neighbor(&self.shape, &self.strides, v, d, true)
    }

    fn prev(&self, v: usize, d: usize) -> usize {
        Self::neighbor(&self.shape, &self.strides, v, d, false)
    }

    fn inject(&self, v: usize) -> ChannelId {
        ChannelId(2 * v as u32)
    }

    fn eject(&self, v: usize) -> ChannelId {
        ChannelId(2 * v as u32 + 1)
    }

    /// The positive-direction channel leaving router `v` along `d`.
    fn plus_channel(&self, v: usize, d: usize) -> ChannelId {
        let base = 2 * self.shape.num_nodes();
        ChannelId((base + 2 * (v * self.shape.ndims() + d)) as u32)
    }

    /// The negative-direction channel leaving router `v` along `d`: the
    /// reverse of the positive channel of `v`'s negative neighbor.
    fn minus_channel(&self, v: usize, d: usize) -> ChannelId {
        ChannelId(self.plus_channel(self.prev(v, d), d).0 ^ 1)
    }

    fn check_node(&self, v: usize) -> Result<(), TopologyError> {
        if v >= self.shape.num_nodes() {
            return Err(TopologyError::NodeOutOfRange {
                node: v,
                num_nodes: self.shape.num_nodes(),
            });
        }
        Ok(())
    }

    /// Appends the router-to-router DOR steps from `cur` to `dst`,
    /// correcting dimensions in the order `rotation, rotation+1, …`
    /// (mod ndims). Bit `d` of `flip_mask` sends dimension `d` the long
    /// way around its ring; with `flip_mask == 0` each ring is crossed
    /// the shorter way, ties going the positive direction.
    fn dor_steps(
        &self,
        mut cur: usize,
        dst: usize,
        rotation: usize,
        flip_mask: u32,
        out: &mut Vec<ChannelId>,
    ) -> u32 {
        let ndims = self.shape.ndims();
        let mut hops = 0u32;
        for i in 0..ndims {
            let d = (rotation + i) % ndims;
            let extent = self.shape.dims()[d] as usize;
            let delta = (self.coord(dst, d) + extent - self.coord(cur, d)) % extent;
            if delta == 0 {
                continue;
            }
            let shorter_is_plus = delta <= extent - delta;
            let go_plus = shorter_is_plus ^ ((flip_mask >> d) & 1 == 1);
            let steps = if go_plus { delta } else { extent - delta };
            for _ in 0..steps {
                if go_plus {
                    out.push(self.plus_channel(cur, d));
                    cur = self.next(cur, d);
                } else {
                    out.push(self.minus_channel(cur, d));
                    cur = self.prev(cur, d);
                }
                hops += 1;
            }
        }
        debug_assert_eq!(cur, dst, "DOR must land on the destination router");
        hops
    }

    fn rotation_of(&self, digits: &[u32]) -> usize {
        digits
            .first()
            .map(|&x| x as usize % self.shape.ndims())
            .unwrap_or(0)
    }
}

impl Topology for Torus {
    fn backend_name(&self) -> &'static str {
        "torus"
    }

    fn num_nodes(&self) -> usize {
        self.shape.num_nodes()
    }

    fn num_channels(&self) -> usize {
        self.channels.len()
    }

    fn channel(&self, id: ChannelId) -> &ChannelDesc {
        &self.channels[id.0 as usize]
    }

    fn validate(&self) -> Result<(), TopologyError> {
        let n = self.shape.num_nodes();
        let ndims = self.shape.ndims();
        let expect = 2 * n * (1 + ndims);
        if self.channels.len() != expect {
            return Err(TopologyError::BadGraphStructure {
                what: format!(
                    "channel count {} != 2N(1+ndims) = {expect}",
                    self.channels.len()
                ),
            });
        }
        for pair in 0..self.channels.len() / 2 {
            let a = &self.channels[2 * pair];
            let b = &self.channels[2 * pair + 1];
            if a.from != b.to || a.to != b.from {
                return Err(TopologyError::BadGraphStructure {
                    what: format!("channel pair {pair} is not reverse-mirrored"),
                });
            }
        }
        for v in 0..n {
            for d in 0..ndims {
                let ch = self.channel(self.plus_channel(v, d));
                let expect_to = Endpoint::Switch(self.next(v, d) as u32);
                if ch.from != Endpoint::Switch(v as u32) || ch.to != expect_to {
                    return Err(TopologyError::BadGraphStructure {
                        what: format!("link (router {v}, dim {d}) does not join ring neighbors"),
                    });
                }
            }
        }
        Ok(())
    }

    fn route_into(
        &self,
        src: usize,
        dst: usize,
        _policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        out.clear();
        if src == dst {
            return Ok(0);
        }
        out.push(self.inject(src));
        let hops = self.dor_steps(src, dst, 0, 0, out);
        out.push(self.eject(dst));
        Ok(hops)
    }

    fn route_tail_into(
        &self,
        src: usize,
        dst: usize,
        _policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        out.clear();
        if src == dst {
            return Ok(0);
        }
        let hops = self.dor_steps(src, dst, 0, 0, out);
        out.push(self.eject(dst));
        Ok(hops)
    }

    fn route_exit_into(
        &self,
        src: usize,
        _policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.check_node(src)?;
        out.clear();
        out.push(self.inject(src));
        let hops = self.dor_steps(src, self.gateway_of(src), 0, 0, out);
        Ok(hops)
    }

    fn route_entry_into(
        &self,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        let hops = self.route_exit_into(dst, policy, out)?;
        out.reverse();
        for c in out.iter_mut() {
            *c = ChannelId(c.0 ^ 1);
        }
        Ok(hops)
    }

    fn free_route_digits(&self) -> u32 {
        1
    }

    fn free_exit_digits(&self) -> u32 {
        0
    }

    fn digit_radix(&self) -> u32 {
        self.shape.ndims() as u32
    }

    fn route_adaptive_into(
        &self,
        src: usize,
        dst: usize,
        digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        out.clear();
        if src == dst {
            return Ok(0);
        }
        out.push(self.inject(src));
        let hops = self.dor_steps(src, dst, self.rotation_of(digits), 0, out);
        out.push(self.eject(dst));
        Ok(hops)
    }

    fn route_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_into(src, dst, policy, out);
        }
        self.check_node(src)?;
        self.check_node(dst)?;
        out.clear();
        if src == dst {
            return Ok(0);
        }
        // Injection and ejection have no alternative.
        if faults.is_failed(self.inject(src)) || faults.is_failed(self.eject(dst)) {
            return Err(TopologyError::Disconnected {
                src,
                dst: Some(dst),
            });
        }
        out.push(self.inject(src));
        let ndims = self.shape.ndims();
        for rotation in 0..ndims {
            for flip_mask in 0..(1u32 << ndims) {
                out.truncate(1);
                let hops = self.dor_steps(src, dst, rotation, flip_mask, out);
                if out[1..].iter().all(|&c| !faults.is_failed(c)) {
                    out.push(self.eject(dst));
                    return Ok(hops);
                }
            }
        }
        out.clear();
        Err(TopologyError::Disconnected {
            src,
            dst: Some(dst),
        })
    }

    fn route_tail_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_tail_into(src, dst, policy, out);
        }
        self.check_node(src)?;
        self.check_node(dst)?;
        out.clear();
        if src == dst {
            return Ok(0);
        }
        // The (class-variant) injection channel is the caller's problem;
        // the ejection has no alternative.
        if faults.is_failed(self.eject(dst)) {
            return Err(TopologyError::Disconnected {
                src,
                dst: Some(dst),
            });
        }
        let ndims = self.shape.ndims();
        for rotation in 0..ndims {
            for flip_mask in 0..(1u32 << ndims) {
                out.clear();
                let hops = self.dor_steps(src, dst, rotation, flip_mask, out);
                if out.iter().all(|&c| !faults.is_failed(c)) {
                    out.push(self.eject(dst));
                    return Ok(hops);
                }
            }
        }
        out.clear();
        Err(TopologyError::Disconnected {
            src,
            dst: Some(dst),
        })
    }

    fn route_exit_into_avoiding(
        &self,
        src: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_exit_into(src, policy, out);
        }
        self.check_node(src)?;
        out.clear();
        if faults.is_failed(self.inject(src)) {
            return Err(TopologyError::Disconnected { src, dst: None });
        }
        out.push(self.inject(src));
        let gateway = self.gateway_of(src);
        // Only dimension 0 moves toward the gateway plane, so the
        // candidate family is just the two ring directions.
        for flip_mask in [0u32, 1] {
            out.truncate(1);
            let hops = self.dor_steps(src, gateway, 0, flip_mask, out);
            if out[1..].iter().all(|&c| !faults.is_failed(c)) {
                return Ok(hops);
            }
        }
        out.clear();
        Err(TopologyError::Disconnected { src, dst: None })
    }

    fn route_entry_into_avoiding(
        &self,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        // Faults fail both directions of a link in tandem, so checking
        // the exit direction checks the entry direction too — mirroring
        // the tree's from-root = reversed to-root construction.
        let hops = self.route_exit_into_avoiding(dst, policy, faults, out)?;
        out.reverse();
        for c in out.iter_mut() {
            *c = ChannelId(c.0 ^ 1);
        }
        Ok(hops)
    }

    fn num_route_classes(&self) -> usize {
        self.shape.num_nodes()
    }

    fn route_class_of(&self, node: usize) -> Result<usize, TopologyError> {
        self.check_node(node)?;
        Ok(node)
    }

    fn class_member_of(&self, node: usize) -> Result<usize, TopologyError> {
        self.check_node(node)?;
        Ok(0)
    }

    fn class_first_node(&self, class: usize) -> usize {
        class
    }

    fn max_class_members(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus(dims: &[u32]) -> Torus {
        Torus::build(TorusShape::new(dims).unwrap())
    }

    /// Shortest ring distance between two nodes along every dimension.
    fn min_hops(t: &Torus, a: usize, b: usize) -> u32 {
        (0..t.shape().ndims())
            .map(|d| {
                let extent = t.shape().dims()[d] as usize;
                let delta = (t.coord(b, d) + extent - t.coord(a, d)) % extent;
                delta.min(extent - delta) as u32
            })
            .sum()
    }

    /// Asserts `route` is a connected Node(src) → … → Node(dst) walk.
    fn assert_connected(t: &Torus, src: usize, dst: usize, route: &[ChannelId]) {
        assert_eq!(t.channel(route[0]).from, Endpoint::Node(src as u32));
        assert_eq!(
            t.channel(*route.last().unwrap()).to,
            Endpoint::Node(dst as u32)
        );
        for w in route.windows(2) {
            assert_eq!(
                t.channel(w[0]).to,
                t.channel(w[1]).from,
                "consecutive channels must share a router"
            );
        }
    }

    #[test]
    fn structure_validates_for_small_tori() {
        for dims in [&[2u32, 2][..], &[4, 4], &[3, 5], &[2, 3, 4], &[4, 4, 4]] {
            let t = torus(dims);
            let n: usize = dims.iter().map(|&d| d as usize).product();
            assert_eq!(Topology::num_nodes(&t), n, "{dims:?}");
            assert_eq!(t.num_channels(), 2 * n * (1 + dims.len()), "{dims:?}");
            Topology::validate(&t).unwrap_or_else(|e| panic!("{dims:?}: {e}"));
        }
    }

    #[test]
    fn dor_routes_are_minimal_connected_and_deterministic() {
        for dims in [&[4u32, 3][..], &[3, 4, 2]] {
            let t = torus(dims);
            let n = Topology::num_nodes(&t);
            let mut out = Vec::new();
            let mut again = Vec::new();
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    let hops = t
                        .route_into(src, dst, AscentPolicy::TrailingDigits, &mut out)
                        .unwrap();
                    assert_eq!(hops, min_hops(&t, src, dst), "{dims:?} {src}->{dst}");
                    assert_eq!(out.len() as u32, hops + 2, "inject + hops + eject");
                    assert_connected(&t, src, dst, &out);
                    t.route_into(src, dst, AscentPolicy::MirrorDescent, &mut again)
                        .unwrap();
                    assert_eq!(out, again, "policy is irrelevant on a torus");
                }
            }
        }
    }

    #[test]
    fn route_same_node_is_empty() {
        let t = torus(&[4, 4]);
        let mut out = vec![ChannelId(99)];
        assert_eq!(
            t.route_into(7, 7, AscentPolicy::TrailingDigits, &mut out)
                .unwrap(),
            0
        );
        assert!(out.is_empty());
        assert!(t
            .route_into(0, 16, AscentPolicy::TrailingDigits, &mut out)
            .is_err());
    }

    #[test]
    fn wrap_around_edges_chosen_correctly() {
        // 5-ring along dimension 0 of a 5×2 torus: 0 -> 4 is one hop
        // through the wrap link, not four hops forward.
        let t = torus(&[5, 2]);
        let mut out = Vec::new();
        let hops = t
            .route_into(0, 4, AscentPolicy::TrailingDigits, &mut out)
            .unwrap();
        assert_eq!(hops, 1);
        assert_eq!(t.channel(out[1]).from, Endpoint::Switch(0));
        assert_eq!(t.channel(out[1]).to, Endpoint::Switch(4));
        // 0 -> 2 goes forward: distance 2 beats the 3-hop wrap.
        let hops = t
            .route_into(0, 2, AscentPolicy::TrailingDigits, &mut out)
            .unwrap();
        assert_eq!(hops, 2);
        assert_eq!(t.channel(out[1]).to, Endpoint::Switch(1));
        // Even extent ties go the positive direction: 0 -> 2 on a 4-ring.
        let t = torus(&[4, 2]);
        let hops = t
            .route_into(0, 2, AscentPolicy::TrailingDigits, &mut out)
            .unwrap();
        assert_eq!(hops, 2);
        assert_eq!(t.channel(out[1]).to, Endpoint::Switch(1));
    }

    #[test]
    fn adaptive_reaches_dst_for_any_digits() {
        let t = torus(&[3, 4, 2]);
        let n = Topology::num_nodes(&t);
        let mut det = Vec::new();
        let mut adp = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let det_hops = t
                    .route_into(src, dst, AscentPolicy::TrailingDigits, &mut det)
                    .unwrap();
                for digit in 0u32..7 {
                    let hops = t.route_adaptive_into(src, dst, &[digit], &mut adp).unwrap();
                    assert_eq!(hops, det_hops, "rotation keeps routes minimal");
                    assert_connected(&t, src, dst, &adp);
                }
                // No digits at all falls back to the deterministic route.
                t.route_adaptive_into(src, dst, &[], &mut adp).unwrap();
                assert_eq!(adp, det);
                // Digit 0 (rotation 0) is the deterministic order too.
                t.route_adaptive_into(src, dst, &[0], &mut adp).unwrap();
                assert_eq!(adp, det);
            }
        }
    }

    #[test]
    fn avoiding_with_empty_faults_is_byte_identical() {
        let t = torus(&[4, 3]);
        let n = Topology::num_nodes(&t);
        let empty = FaultSet::new();
        let (mut base, mut avoid) = (Vec::new(), Vec::new());
        for src in 0..n {
            for dst in 0..n {
                let a = t
                    .route_into(src, dst, AscentPolicy::TrailingDigits, &mut base)
                    .unwrap();
                let b = t
                    .route_into_avoiding(src, dst, AscentPolicy::TrailingDigits, &empty, &mut avoid)
                    .unwrap();
                assert_eq!(a, b);
                assert_eq!(base, avoid);
                let a = t
                    .route_exit_into(src, AscentPolicy::TrailingDigits, &mut base)
                    .unwrap();
                let b = t
                    .route_exit_into_avoiding(src, AscentPolicy::TrailingDigits, &empty, &mut avoid)
                    .unwrap();
                assert_eq!(a, b);
                assert_eq!(base, avoid);
            }
        }
    }

    #[test]
    fn avoiding_reroutes_around_failed_ring_link() {
        let t = torus(&[4, 4]);
        let mut det = Vec::new();
        t.route_into(0, 2, AscentPolicy::TrailingDigits, &mut det)
            .unwrap();
        // Fail the first ring link of the deterministic route (det[1]).
        let mut faults = FaultSet::new();
        faults.fail_link(det[1]);
        let mut out = Vec::new();
        t.route_into_avoiding(0, 2, AscentPolicy::TrailingDigits, &faults, &mut out)
            .unwrap();
        assert_connected(&t, 0, 2, &out);
        assert!(out.iter().all(|&c| !faults.is_failed(c)));
        // A failed injection channel has no alternative.
        let mut faults = FaultSet::new();
        faults.fail_link(ChannelId(0));
        assert!(matches!(
            t.route_into_avoiding(0, 2, AscentPolicy::TrailingDigits, &faults, &mut out),
            Err(TopologyError::Disconnected {
                src: 0,
                dst: Some(2)
            })
        ));
    }

    #[test]
    fn entry_is_reverse_of_exit() {
        let t = torus(&[4, 3]);
        let (mut exit, mut entry) = (Vec::new(), Vec::new());
        for v in 0..Topology::num_nodes(&t) {
            let a = t
                .route_exit_into(v, AscentPolicy::TrailingDigits, &mut exit)
                .unwrap();
            let b = t
                .route_entry_into(v, AscentPolicy::TrailingDigits, &mut entry)
                .unwrap();
            assert_eq!(a, b);
            let mirrored: Vec<ChannelId> = exit.iter().rev().map(|&c| ChannelId(c.0 ^ 1)).collect();
            assert_eq!(entry, mirrored);
            // The exit route starts at the node and ends on the gateway
            // plane (coordinate 0 along dimension 0).
            assert_eq!(t.channel(exit[0]).from, Endpoint::Node(v as u32));
            let gw = t.gateway_of(v);
            assert_eq!(t.coord(gw, 0), 0);
            assert_eq!(
                t.channel(*exit.last().unwrap()).to,
                if exit.len() == 1 {
                    Endpoint::Switch(v as u32)
                } else {
                    Endpoint::Switch(gw as u32)
                }
            );
        }
    }

    #[test]
    fn route_tail_is_the_route_minus_injection() {
        let t = torus(&[3, 4]);
        let n = Topology::num_nodes(&t);
        let (mut full, mut tail) = (Vec::new(), Vec::new());
        for src in 0..n {
            for dst in 0..n {
                t.route_into(src, dst, AscentPolicy::TrailingDigits, &mut full)
                    .unwrap();
                t.route_tail_into(src, dst, AscentPolicy::TrailingDigits, &mut tail)
                    .unwrap();
                if src == dst {
                    assert!(tail.is_empty());
                } else {
                    assert_eq!(&full[1..], &tail[..]);
                }
            }
        }
    }

    #[test]
    fn every_node_is_its_own_route_class() {
        let t = torus(&[4, 4]);
        assert_eq!(t.num_route_classes(), 16);
        assert_eq!(t.max_class_members(), 1);
        for v in 0..16 {
            assert_eq!(t.route_class_of(v).unwrap(), v);
            assert_eq!(t.class_member_of(v).unwrap(), 0);
            assert_eq!(t.class_first_node(v), v);
        }
        assert!(t.route_class_of(16).is_err());
    }

    #[test]
    fn adaptive_exit_digits_are_unsupported() {
        let t = torus(&[4, 4]);
        let mut out = Vec::new();
        assert!(matches!(
            t.route_exit_adaptive_into(3, &[1], &mut out),
            Err(TopologyError::UnsupportedByBackend {
                backend: "torus",
                ..
            })
        ));
    }
}
