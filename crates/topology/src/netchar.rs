//! Network characteristics and the service-time formulas of Eqs. (11)–(12).
//!
//! Every network in the system (each cluster's ICN1 and ECN1, and the global
//! ICN2) carries its own `NetworkCharacteristics`, which is exactly how the
//! paper expresses network heterogeneity (assumption 5).

use crate::error::TopologyError;
use serde::{Deserialize, Serialize};

/// Bandwidth/latency parameters of one communication network.
///
/// Units follow the paper's Table 2: `bandwidth` in bytes per time unit
/// (so `β = 1/bandwidth` is the per-byte transmission time of Eq. (11)),
/// `network_latency` is `α_n`, `switch_latency` is `α_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct NetworkCharacteristics {
    /// Link bandwidth (bytes per time unit); `β_n = 1/bandwidth`.
    pub bandwidth: f64,
    /// Network interface latency `α_n` (time units).
    pub network_latency: f64,
    /// Switch latency `α_s` (time units).
    pub switch_latency: f64,
}

impl NetworkCharacteristics {
    /// Creates a validated characteristics record.
    pub fn new(
        bandwidth: f64,
        network_latency: f64,
        switch_latency: f64,
    ) -> Result<Self, TopologyError> {
        let net = Self {
            bandwidth,
            network_latency,
            switch_latency,
        };
        net.validate()?;
        Ok(net)
    }

    /// Checks the physical invariants (`bandwidth` finite and positive,
    /// latencies finite and non-negative). Deserialization bypasses
    /// [`NetworkCharacteristics::new`], so [`crate::SystemSpec::validate`]
    /// re-checks every network through this.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if !(self.bandwidth.is_finite() && self.bandwidth > 0.0) {
            return Err(TopologyError::BadNetworkCharacteristic { what: "bandwidth" });
        }
        if !(self.network_latency.is_finite() && self.network_latency >= 0.0) {
            return Err(TopologyError::BadNetworkCharacteristic {
                what: "network_latency",
            });
        }
        if !(self.switch_latency.is_finite() && self.switch_latency >= 0.0) {
            return Err(TopologyError::BadNetworkCharacteristic {
                what: "switch_latency",
            });
        }
        Ok(())
    }

    /// Per-byte transmission time `β_n = 1 / bandwidth`.
    pub fn beta(&self) -> f64 {
        1.0 / self.bandwidth
    }

    /// Node↔switch flit transfer time, Eq. (11):
    /// `t_cn = 0.5·α_n + d_m·β_n` for a flit of `d_m` bytes.
    pub fn t_cn(&self, flit_bytes: f64) -> f64 {
        0.5 * self.network_latency + flit_bytes * self.beta()
    }

    /// Switch↔switch flit transfer time, Eq. (12):
    /// `t_cs = α_s + d_m·β_n`.
    pub fn t_cs(&self, flit_bytes: f64) -> f64 {
        self.switch_latency + flit_bytes * self.beta()
    }

    /// Returns a copy with bandwidth scaled by `factor` (used by the Fig. 7
    /// design-space experiment, which raises ICN2 bandwidth by 20 %).
    pub fn scale_bandwidth(&self, factor: f64) -> Self {
        Self {
            bandwidth: self.bandwidth * factor,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net1_service_times_match_hand_calc() {
        // Table 2, Net.1: bandwidth 500, α_n 0.01, α_s 0.02; flit 256 bytes.
        let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        assert!((net1.beta() - 0.002).abs() < 1e-15);
        assert!((net1.t_cn(256.0) - (0.005 + 0.512)).abs() < 1e-12);
        assert!((net1.t_cs(256.0) - (0.02 + 0.512)).abs() < 1e-12);
    }

    #[test]
    fn net2_service_times_match_hand_calc() {
        // Table 2, Net.2: bandwidth 250, α_n 0.05, α_s 0.01; flit 512 bytes.
        let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
        assert!((net2.t_cn(512.0) - (0.025 + 2.048)).abs() < 1e-12);
        assert!((net2.t_cs(512.0) - (0.01 + 2.048)).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(NetworkCharacteristics::new(0.0, 0.1, 0.1).is_err());
        assert!(NetworkCharacteristics::new(-1.0, 0.1, 0.1).is_err());
        assert!(NetworkCharacteristics::new(f64::NAN, 0.1, 0.1).is_err());
        assert!(NetworkCharacteristics::new(1.0, -0.1, 0.1).is_err());
        assert!(NetworkCharacteristics::new(1.0, 0.1, f64::INFINITY).is_err());
        // Zero latencies are allowed (ideal network).
        assert!(NetworkCharacteristics::new(1.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn bandwidth_scaling() {
        let net = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
        let faster = net.scale_bandwidth(1.2);
        assert!((faster.bandwidth - 600.0).abs() < 1e-12);
        assert_eq!(faster.network_latency, net.network_latency);
        assert!(faster.t_cs(256.0) < net.t_cs(256.0));
    }
}
