//! Error types for topology construction and system-spec validation.

use std::fmt;

/// Errors raised when constructing trees, routing, or validating a
/// cluster-of-clusters system specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// `m` must be even and at least 2 (switch ports split half down, half up).
    BadPortCount {
        /// The offending `m`.
        m: u32,
    },
    /// `n` must be at least 1 (at least one switch level).
    BadTreeHeight {
        /// The offending `n`.
        n: u32,
    },
    /// The requested topology would overflow the node/switch id space.
    TooLarge {
        /// Human-readable description of what overflowed.
        what: &'static str,
    },
    /// A node id outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the tree.
        num_nodes: usize,
    },
    /// The number of clusters `C` is not expressible as `2(m/2)^{n_c}`,
    /// so no m-port n_c-tree ICN2 exists for it.
    ClusterCountNotTreeSized {
        /// Number of clusters.
        c: usize,
        /// Switch arity.
        m: u32,
    },
    /// A system spec must contain at least two clusters (the model's
    /// inter-cluster terms average over `j ≠ i`).
    TooFewClusters {
        /// The number of clusters supplied.
        c: usize,
    },
    /// A network characteristic must be positive and finite.
    BadNetworkCharacteristic {
        /// Which parameter was invalid.
        what: &'static str,
    },
    /// No fault-free Up*/Down* path exists between the endpoints: every
    /// alternate ascent is cut by the fault set (or an injection/ejection
    /// channel, which has no alternative, is down).
    Disconnected {
        /// Source node id.
        src: usize,
        /// Destination node id, or `None` when the unreachable target is
        /// the root level (inter-cluster exit/entry routes).
        dst: Option<usize>,
    },
    /// A structural invariant of a built channel graph failed
    /// ([`crate::Graph::validate`]).
    BadGraphStructure {
        /// Which invariant was violated, with the offending values.
        what: String,
    },
    /// The requested operation exists on some topology backends but not
    /// on this one (e.g. adaptive exit digits on a torus). Callers that
    /// support multiple backends match on this instead of panicking.
    UnsupportedByBackend {
        /// Name of the backend that lacks the operation (`"tree"`, `"torus"`).
        backend: &'static str,
        /// The unsupported operation or parameter.
        what: &'static str,
    },
    /// A torus shape failed validation: 2 or 3 dimensions, each of extent
    /// `2..=1024`, with at most `2^20` nodes in total.
    BadTorusShape {
        /// Which constraint was violated, with the offending values.
        what: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadPortCount { m } => {
                write!(f, "switch port count m={m} must be even and >= 2")
            }
            Self::BadTreeHeight { n } => write!(f, "tree height n={n} must be >= 1"),
            Self::TooLarge { what } => write!(f, "topology too large: {what} overflows"),
            Self::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (tree has {num_nodes} nodes)"
                )
            }
            Self::ClusterCountNotTreeSized { c, m } => write!(
                f,
                "cluster count C={c} is not 2*(m/2)^n_c for any n_c with m={m}; \
                 the global ICN2 tree cannot be built"
            ),
            Self::TooFewClusters { c } => {
                write!(f, "system needs at least 2 clusters, got {c}")
            }
            Self::BadNetworkCharacteristic { what } => {
                write!(
                    f,
                    "network characteristic {what} must be positive and finite"
                )
            }
            Self::Disconnected { src, dst } => match dst {
                Some(dst) => write!(
                    f,
                    "no fault-free Up*/Down* path from node {src} to node {dst}"
                ),
                None => write!(
                    f,
                    "no fault-free Up*/Down* path from node {src} to any root"
                ),
            },
            Self::BadGraphStructure { what } => {
                write!(f, "channel graph invariant violated: {what}")
            }
            Self::UnsupportedByBackend { backend, what } => {
                write!(f, "the {backend} topology backend does not support {what}")
            }
            Self::BadTorusShape { what } => {
                write!(f, "bad torus shape: {what}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = TopologyError::BadPortCount { m: 3 };
        assert!(e.to_string().contains("m=3"));
        let e = TopologyError::ClusterCountNotTreeSized { c: 10, m: 8 };
        assert!(e.to_string().contains("C=10"));
        let e = TopologyError::NodeOutOfRange {
            node: 9,
            num_nodes: 8,
        };
        assert!(e.to_string().contains('9'));
        let e = TopologyError::Disconnected {
            src: 3,
            dst: Some(7),
        };
        assert!(e.to_string().contains("node 3"));
        assert!(e.to_string().contains("node 7"));
        let e = TopologyError::Disconnected { src: 3, dst: None };
        assert!(e.to_string().contains("any root"));
        let e = TopologyError::BadGraphStructure {
            what: "channel count 4 != 2nN = 8".into(),
        };
        assert!(e.to_string().contains("2nN"));
        let e = TopologyError::UnsupportedByBackend {
            backend: "torus",
            what: "adaptive exit digits",
        };
        assert!(e.to_string().contains("torus"));
        assert!(e.to_string().contains("adaptive exit digits"));
        let e = TopologyError::BadTorusShape {
            what: "dimension 0 has extent 1 (must be 2..=1024)".into(),
        };
        assert!(e.to_string().contains("extent 1"));
    }
}
