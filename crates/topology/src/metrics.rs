//! Structural metrics of m-port n-trees.
//!
//! The paper motivates fat trees by their *Constant Bisectional Bandwidth*
//! (§2: "High performance computing clusters typically utilize Constant
//! Bisectional Bandwidth (i.e., Fat-Tree) networks"). This module computes
//! the quantities that make that statement checkable: link counts per
//! level, the root-cut capacity, diameter, and path redundancy.

use crate::tree::MPortNTree;
use serde::{Deserialize, Serialize};

/// Structural metrics of one m-port n-tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeMetrics {
    /// Processing nodes `N`.
    pub nodes: usize,
    /// Switches `N_sw`.
    pub switches: usize,
    /// Directed channels (`2·n·N`).
    pub channels: usize,
    /// Network diameter in links (`2n`: up to a root and back down).
    pub diameter: usize,
    /// Undirected links crossing into the root level — the tree's
    /// bisection-defining cut.
    pub root_cut_links: usize,
    /// Number of distinct roots (equivalently, link-disjoint up/down path
    /// families between maximally distant nodes): `(m/2)^{n−1}`.
    pub path_redundancy: usize,
    /// Undirected links per link-level (node↔leaf first). All entries are
    /// equal for a fat tree — the constant-bisectional-bandwidth property.
    pub links_per_level: Vec<usize>,
}

impl TreeMetrics {
    /// Computes all metrics for `tree`.
    pub fn compute(tree: &MPortNTree) -> Self {
        let n = tree.n() as usize;
        let nodes = tree.num_nodes();
        let k = tree.k() as usize;
        // Level l in 1..=n: links between level l−1 (nodes for l=1) and l.
        let mut links_per_level = Vec::with_capacity(n);
        for level in 1..=n {
            let links = if level == n {
                // Each root has m down ports.
                tree.switches_at_level(level as u32) * tree.m() as usize
            } else {
                // Each level-l switch has k up ports.
                tree.switches_at_level(level as u32) * k
            };
            links_per_level.push(if level == 1 {
                // Leaf switches' down ports == node count.
                nodes
            } else {
                links_down_into(tree, level)
            });
            let _ = links;
        }
        let root_cut_links = *links_per_level.last().expect("n >= 1");
        Self {
            nodes,
            switches: tree.num_switches(),
            channels: 2 * n * nodes,
            diameter: 2 * n,
            root_cut_links,
            path_redundancy: k.pow(tree.n() - 1),
            links_per_level,
        }
    }

    /// Whether every link level carries the same capacity (constant
    /// bisectional bandwidth).
    pub fn has_constant_bisection(&self) -> bool {
        self.links_per_level
            .iter()
            .all(|&l| l == self.links_per_level[0])
    }

    /// Bisection ratio: root-cut links per node. `1.0` for a full fat tree.
    pub fn bisection_ratio(&self) -> f64 {
        self.root_cut_links as f64 / self.nodes as f64
    }
}

/// Undirected links between switch level `level−1` and `level`
/// (for `level ≥ 2`): the up-port budget of level `level−1`.
fn links_down_into(tree: &MPortNTree, level: usize) -> usize {
    tree.switches_at_level(level as u32 - 1) * tree.k() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_has_constant_bisection() {
        for (m, n) in [(4u32, 1u32), (4, 2), (4, 3), (8, 2), (8, 3), (16, 2)] {
            let t = MPortNTree::new(m, n).unwrap();
            let metrics = TreeMetrics::compute(&t);
            assert!(
                metrics.has_constant_bisection(),
                "m={m} n={n}: {:?}",
                metrics.links_per_level
            );
            assert!((metrics.bisection_ratio() - 1.0).abs() < 1e-12);
            assert_eq!(metrics.links_per_level[0], t.num_nodes());
        }
    }

    #[test]
    fn counts_match_tree_formulas() {
        let t = MPortNTree::new(8, 3).unwrap();
        let m = TreeMetrics::compute(&t);
        assert_eq!(m.nodes, 128);
        assert_eq!(m.switches, 80);
        assert_eq!(m.channels, 2 * 3 * 128);
        assert_eq!(m.diameter, 6);
        assert_eq!(m.path_redundancy, 16);
        assert_eq!(m.links_per_level, vec![128, 128, 128]);
    }

    #[test]
    fn single_level_tree() {
        let t = MPortNTree::new(8, 1).unwrap();
        let m = TreeMetrics::compute(&t);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.path_redundancy, 1);
        assert_eq!(m.root_cut_links, 8);
        assert!(m.has_constant_bisection());
    }

    #[test]
    fn redundancy_grows_with_height_and_arity() {
        let r = |m, n| TreeMetrics::compute(&MPortNTree::new(m, n).unwrap()).path_redundancy;
        assert!(r(4, 3) > r(4, 2));
        assert!(r(8, 3) > r(4, 3));
    }
}
