//! The pluggable [`Topology`] backend abstraction.
//!
//! Historically the whole stack routed through `Graph`'s ad-hoc
//! `route* / route*_into / route*_avoiding` method surface, hard-wiring
//! the m-port n-tree everywhere. This module makes the de-facto API
//! explicit:
//!
//! * [`Topology`] — the allocation-free routing trait every backend
//!   implements (deterministic, adaptive and fault-avoiding forms, all
//!   writing into a caller-supplied `&mut Vec<ChannelId>`), plus the
//!   route-class algebra the lazy route-interning table relies on.
//! * [`RouteQuery`] / [`RouteMode`] — the single consolidated entrypoint
//!   that replaces the old method explosion for new callers; the legacy
//!   `Graph` methods survive as `#[doc(hidden)]` delegating wrappers so
//!   downstream code and the bit-identity goldens are untouched.
//! * [`TopoSpec`] / [`TorusShape`] — the serialisable
//!   `{"kind": "tree" | "torus", ...}` configuration block grown by
//!   [`crate::ClusterSpec`] / [`crate::SystemSpec`], defaulting to `tree`
//!   so every pre-existing scenario parses unchanged.
//! * [`AnyTopology`] — `dyn`-free enum dispatch over the concrete
//!   backends, so the simulator's hot paths stay monomorphic.

use crate::error::TopologyError;
use crate::graph::{AscentPolicy, ChannelDesc, ChannelId, FaultSet, Graph};
use crate::torus::Torus;
use crate::tree::MPortNTree;
use serde::{check_unknown_fields, de_field, DeError, Deserialize, Serialize, Value};

/// How a [`RouteQuery`] picks among the routes a backend offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode<'a> {
    /// The backend's deterministic route (Up*/Down* on a tree,
    /// dimension-order on a torus).
    Deterministic,
    /// The backend's adaptive variant, shaped by caller-supplied digits
    /// (interpreted per backend; surplus digits are ignored, missing ones
    /// fall back to the deterministic choice).
    Adaptive {
        /// The free routing digits, drawn by the caller.
        digits: &'a [u32],
    },
}

/// One consolidated route request: the single entrypoint that subsumes
/// the historical `route* / route*_avoiding / route*_adaptive` method
/// explosion (see [`Topology::route_query`]).
#[derive(Debug, Clone, Copy)]
pub struct RouteQuery<'a> {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Ascent policy (tree backends; ignored by backends without a
    /// policy choice).
    pub policy: AscentPolicy,
    /// Failed links to route around, if any. `None` (or an empty set)
    /// requests the fault-free route.
    pub faults: Option<&'a FaultSet>,
    /// Deterministic or adaptive routing.
    pub mode: RouteMode<'a>,
}

/// A routable interconnection network backend.
///
/// The core methods are allocation-free: they clear and fill a
/// caller-supplied `&mut Vec<ChannelId>` and return a backend-specific
/// route *level* (the NCA level `h` on a tree, where a node-to-node route
/// has `2h` channels; the switch-hop count on a torus). Fault-avoiding
/// and adaptive forms come with provided-method defaults so a minimal
/// backend only implements the deterministic core.
///
/// # Channel-layout contract
///
/// Every backend numbers its directed channels so that
/// * the two directions of a physical link occupy consecutive ids
///   ([`Topology::reverse`] `== id ^ 1`, even/odd pairs), and
/// * the node↔switch links come first, two per node in node order, so the
///   injection channel of node `i` is id `2·i` and its ejection channel
///   id `2·i + 1`.
///
/// The route-interning tables and the fault-schedule machinery in the
/// simulator depend on both invariants.
///
/// # Route-class contract
///
/// [`Topology::route_tail_into`] (a route minus its injection channel)
/// must be a pure function of `(route_class_of(src), dst)`: every source
/// in the same class shares the whole tail. On a tree the class is the
/// leaf-switch index; on a torus every node is its own class.
pub trait Topology {
    /// Short backend name used in error messages (`"tree"`, `"torus"`).
    fn backend_name(&self) -> &'static str;

    /// Number of processing nodes.
    fn num_nodes(&self) -> usize;

    /// Total number of directed channels.
    fn num_channels(&self) -> usize;

    /// Descriptor of channel `id`.
    fn channel(&self, id: ChannelId) -> &ChannelDesc;

    /// The opposite direction of the same physical link.
    fn reverse(&self, id: ChannelId) -> ChannelId {
        ChannelId(id.0 ^ 1)
    }

    /// Checks the structural invariants of the built channel graph.
    fn validate(&self) -> Result<(), TopologyError>;

    // ---- deterministic core ------------------------------------------------

    /// Deterministic route from `src` to `dst` (empty for `src == dst`);
    /// returns the route level.
    fn route_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError>;

    /// Deterministic route minus its injection channel — the part shared
    /// by every source of the same route class (see the trait docs).
    fn route_tail_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        let level = self.route_into(src, dst, policy, out)?;
        if !out.is_empty() {
            out.remove(0);
        }
        Ok(level)
    }

    /// Deterministic exit route: from node `src` to the backend's egress
    /// point (a root switch on a tree, the gateway hyperplane on a
    /// torus), where a concentrator/dispatcher picks the message up.
    fn route_exit_into(
        &self,
        src: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError>;

    /// Deterministic entry route: the mirror of
    /// [`Topology::route_exit_into`], from the egress point down/across to
    /// node `dst` (reversed channels of the exit route).
    fn route_entry_into(
        &self,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError>;

    // ---- adaptive forms ----------------------------------------------------

    /// Number of free digits an adaptive node-to-node route consumes.
    fn free_route_digits(&self) -> u32 {
        0
    }

    /// Number of free digits an adaptive exit route consumes.
    fn free_exit_digits(&self) -> u32 {
        0
    }

    /// Exclusive upper bound of each free digit (digits are drawn in
    /// `0..digit_radix()`).
    fn digit_radix(&self) -> u32 {
        1
    }

    /// Adaptive route shaped by caller-supplied digits. The default
    /// ignores the digits and routes deterministically, which satisfies
    /// the contract that missing digits fall back to the deterministic
    /// choice.
    fn route_adaptive_into(
        &self,
        src: usize,
        dst: usize,
        digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        let _ = digits;
        self.route_into(src, dst, AscentPolicy::TrailingDigits, out)
    }

    /// Adaptive exit route shaped by caller-supplied digits. Backends
    /// without adaptive exits (the torus) report
    /// [`TopologyError::UnsupportedByBackend`], which is the default.
    fn route_exit_adaptive_into(
        &self,
        src: usize,
        digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        let _ = (src, digits, &out);
        Err(TopologyError::UnsupportedByBackend {
            backend: self.backend_name(),
            what: "adaptive exit digits",
        })
    }

    // ---- fault-avoiding forms ----------------------------------------------

    /// Deterministic route avoiding `faults`. An empty fault set must be
    /// byte-identical to [`Topology::route_into`]; the default supports
    /// only that case.
    fn route_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_into(src, dst, policy, out);
        }
        Err(TopologyError::UnsupportedByBackend {
            backend: self.backend_name(),
            what: "fault-avoiding routes",
        })
    }

    /// Fault-avoiding form of [`Topology::route_tail_into`]: ignores
    /// faults on the (class-variant) injection channel, which the caller
    /// checks per source.
    fn route_tail_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_tail_into(src, dst, policy, out);
        }
        Err(TopologyError::UnsupportedByBackend {
            backend: self.backend_name(),
            what: "fault-avoiding routes",
        })
    }

    /// Fault-avoiding form of [`Topology::route_exit_into`].
    fn route_exit_into_avoiding(
        &self,
        src: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_exit_into(src, policy, out);
        }
        Err(TopologyError::UnsupportedByBackend {
            backend: self.backend_name(),
            what: "fault-avoiding routes",
        })
    }

    /// Fault-avoiding form of [`Topology::route_entry_into`].
    fn route_entry_into_avoiding(
        &self,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        if faults.is_empty() {
            return self.route_entry_into(dst, policy, out);
        }
        Err(TopologyError::UnsupportedByBackend {
            backend: self.backend_name(),
            what: "fault-avoiding routes",
        })
    }

    // ---- route-class algebra (lazy interning) ------------------------------

    /// Number of route-equivalence classes (see the trait docs).
    fn num_route_classes(&self) -> usize;

    /// Route class of `node`.
    fn route_class_of(&self, node: usize) -> Result<usize, TopologyError>;

    /// Position of `node` within its route class, in
    /// `0..max_class_members()`.
    fn class_member_of(&self, node: usize) -> Result<usize, TopologyError>;

    /// The canonical (first) node of route class `class` — the inverse of
    /// `route_class_of` at member 0.
    fn class_first_node(&self, class: usize) -> usize;

    /// Upper bound on the members of any route class.
    fn max_class_members(&self) -> usize;

    // ---- consolidated entrypoint -------------------------------------------

    /// The single route entrypoint: dispatches a [`RouteQuery`] to the
    /// matching specialised method. Adaptive routing combined with a
    /// non-empty fault set is not offered by any backend and reports
    /// [`TopologyError::UnsupportedByBackend`].
    fn route_query(
        &self,
        q: &RouteQuery<'_>,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        match (q.mode, q.faults) {
            (RouteMode::Deterministic, None) => self.route_into(q.src, q.dst, q.policy, out),
            (RouteMode::Deterministic, Some(f)) => {
                self.route_into_avoiding(q.src, q.dst, q.policy, f, out)
            }
            (RouteMode::Adaptive { digits }, None) => {
                self.route_adaptive_into(q.src, q.dst, digits, out)
            }
            (RouteMode::Adaptive { digits }, Some(f)) if f.is_empty() => {
                self.route_adaptive_into(q.src, q.dst, digits, out)
            }
            (RouteMode::Adaptive { .. }, Some(_)) => Err(TopologyError::UnsupportedByBackend {
                backend: self.backend_name(),
                what: "adaptive routing combined with fault avoidance",
            }),
        }
    }
}

impl Topology for Graph {
    fn backend_name(&self) -> &'static str {
        "tree"
    }

    fn num_nodes(&self) -> usize {
        self.tree().num_nodes()
    }

    fn num_channels(&self) -> usize {
        self.num_channels()
    }

    fn channel(&self, id: ChannelId) -> &ChannelDesc {
        self.channel(id)
    }

    fn validate(&self) -> Result<(), TopologyError> {
        self.validate()
    }

    fn route_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_into(src, dst, policy, out)
    }

    fn route_tail_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_tail_into(src, dst, policy, out)
    }

    fn route_exit_into(
        &self,
        src: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_to_root_into(src, policy, out)
    }

    fn route_entry_into(
        &self,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_from_root_into(dst, policy, out)
    }

    fn free_route_digits(&self) -> u32 {
        self.tree().n() - 1
    }

    fn free_exit_digits(&self) -> u32 {
        self.tree().n() - 1
    }

    fn digit_radix(&self) -> u32 {
        self.tree().k()
    }

    fn route_adaptive_into(
        &self,
        src: usize,
        dst: usize,
        digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_adaptive_into(src, dst, digits, out)
    }

    fn route_exit_adaptive_into(
        &self,
        src: usize,
        digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_to_root_adaptive_into(src, digits, out)
    }

    fn route_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_into_avoiding(src, dst, policy, faults, out)
    }

    fn route_tail_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_tail_into_avoiding(src, dst, policy, faults, out)
    }

    fn route_exit_into_avoiding(
        &self,
        src: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_to_root_into_avoiding(src, policy, faults, out)
    }

    fn route_entry_into_avoiding(
        &self,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        self.route_from_root_into_avoiding(dst, policy, faults, out)
    }

    fn num_route_classes(&self) -> usize {
        self.tree().num_leaf_switches()
    }

    fn route_class_of(&self, node: usize) -> Result<usize, TopologyError> {
        self.tree().leaf_index_of(node)
    }

    fn class_member_of(&self, node: usize) -> Result<usize, TopologyError> {
        self.tree().leaf_member_of(node)
    }

    fn class_first_node(&self, class: usize) -> usize {
        self.tree().node_under_leaf(class, 0)
    }

    fn max_class_members(&self) -> usize {
        if self.tree().n() == 1 {
            self.tree().num_nodes()
        } else {
            self.tree().k() as usize
        }
    }
}

/// Validated shape of a 2D/3D torus: per-dimension extents.
///
/// Kept `Copy` (fixed-size storage, unused trailing dimensions hold 1) so
/// [`crate::ClusterSpec`] stays `Copy` like every other spec type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusShape {
    ndims: u8,
    dims: [u32; 3],
}

impl TorusShape {
    /// Hard cap on each dimension's extent.
    pub const MAX_DIM: u32 = 1024;
    /// Hard cap on the total node count (keeps route lengths and the
    /// interning table's packed offsets in range).
    pub const MAX_NODES: usize = 1 << 20;

    /// Validates and builds a torus shape from its dimension extents.
    pub fn new(dims: &[u32]) -> Result<Self, TopologyError> {
        if !(2..=3).contains(&dims.len()) {
            return Err(TopologyError::BadTorusShape {
                what: format!("{} dimensions (must be 2 or 3)", dims.len()),
            });
        }
        let mut nodes = 1usize;
        for (d, &extent) in dims.iter().enumerate() {
            if !(2..=Self::MAX_DIM).contains(&extent) {
                return Err(TopologyError::BadTorusShape {
                    what: format!(
                        "dimension {d} has extent {extent} (must be 2..={})",
                        Self::MAX_DIM
                    ),
                });
            }
            nodes *= extent as usize;
        }
        if nodes > Self::MAX_NODES {
            return Err(TopologyError::BadTorusShape {
                what: format!("{nodes} nodes exceed the cap of {}", Self::MAX_NODES),
            });
        }
        let mut fixed = [1u32; 3];
        fixed[..dims.len()].copy_from_slice(dims);
        Ok(Self {
            ndims: dims.len() as u8,
            dims: fixed,
        })
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[u32] {
        &self.dims[..self.ndims as usize]
    }

    /// Number of dimensions (2 or 3).
    pub fn ndims(&self) -> usize {
        self.ndims as usize
    }

    /// Total node count (product of the extents).
    pub fn num_nodes(&self) -> usize {
        self.dims().iter().map(|&d| d as usize).product()
    }
}

/// Which topology backend a network uses — the serialisable
/// `{"kind": "tree" | "torus", ...}` configuration block.
///
/// Defaults to [`TopoSpec::Tree`] so every spec written before this block
/// existed parses (and behaves) unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopoSpec {
    /// The paper's m-port n-tree (the default); shaped by the spec's `m`
    /// and the cluster's tree height `n`.
    #[default]
    Tree,
    /// A 2D/3D torus with dimension-order routing; shaped by its own
    /// dimension extents (`m` and `n` do not apply).
    Torus(TorusShape),
}

impl TopoSpec {
    /// Short backend name, matching [`Topology::backend_name`].
    pub fn backend_name(&self) -> &'static str {
        match self {
            TopoSpec::Tree => "tree",
            TopoSpec::Torus(_) => "torus",
        }
    }

    /// Whether this is the tree backend.
    pub fn is_tree(&self) -> bool {
        matches!(self, TopoSpec::Tree)
    }
}

impl Serialize for TopoSpec {
    fn to_value(&self) -> Value {
        match self {
            TopoSpec::Tree => Value::Obj(vec![("kind".into(), Value::Str("tree".into()))]),
            TopoSpec::Torus(shape) => Value::Obj(vec![
                ("kind".into(), Value::Str("torus".into())),
                ("dims".into(), shape.dims().to_value()),
            ]),
        }
    }
}

impl Deserialize for TopoSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Obj(_)) {
            return Err(DeError::expected("topology object", v));
        }
        let kind: String = de_field(v, "TopoSpec", "kind")?;
        match kind.as_str() {
            "tree" => {
                check_unknown_fields(v, "TopoSpec", &["kind"])?;
                Ok(TopoSpec::Tree)
            }
            "torus" => {
                check_unknown_fields(v, "TopoSpec", &["kind", "dims"])?;
                let dims: Vec<u32> = de_field(v, "TopoSpec", "dims")?;
                TorusShape::new(&dims)
                    .map(TopoSpec::Torus)
                    .map_err(|e| DeError(format!("TopoSpec.dims: {e}")))
            }
            other => Err(DeError(format!(
                "TopoSpec.kind: unknown topology kind {other:?} (expected \"tree\" or \"torus\")"
            ))),
        }
    }
}

/// `dyn`-free dispatch over the concrete [`Topology`] backends.
#[derive(Debug, Clone)]
pub enum AnyTopology {
    /// An m-port n-tree channel graph.
    Tree(Graph),
    /// A 2D/3D torus channel graph.
    Torus(Torus),
}

impl AnyTopology {
    /// Builds the channel graph a [`TopoSpec`] describes: a tree from
    /// `(m, tree_height)`, a torus from its own shape (`m` and
    /// `tree_height` do not apply).
    pub fn build(m: u32, tree_height: u32, topo: &TopoSpec) -> Result<Self, TopologyError> {
        match topo {
            TopoSpec::Tree => Ok(AnyTopology::Tree(Graph::build(MPortNTree::new(
                m,
                tree_height,
            )?))),
            TopoSpec::Torus(shape) => Ok(AnyTopology::Torus(Torus::build(*shape))),
        }
    }

    /// The tree backend, if that is what this is.
    pub fn as_tree(&self) -> Option<&Graph> {
        match self {
            AnyTopology::Tree(g) => Some(g),
            AnyTopology::Torus(_) => None,
        }
    }

    /// The torus backend, if that is what this is.
    pub fn as_torus(&self) -> Option<&Torus> {
        match self {
            AnyTopology::Tree(_) => None,
            AnyTopology::Torus(t) => Some(t),
        }
    }

    /// The tree backend, or [`TopologyError::UnsupportedByBackend`] with
    /// the caller-supplied operation name — the checked replacement for
    /// the old "it must be a tree" unwraps.
    pub fn expect_tree(&self, what: &'static str) -> Result<&Graph, TopologyError> {
        self.as_tree().ok_or(TopologyError::UnsupportedByBackend {
            backend: self.backend_name(),
            what,
        })
    }
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            AnyTopology::Tree($t) => $body,
            AnyTopology::Torus($t) => $body,
        }
    };
}

impl Topology for AnyTopology {
    fn backend_name(&self) -> &'static str {
        dispatch!(self, t => t.backend_name())
    }

    fn num_nodes(&self) -> usize {
        dispatch!(self, t => Topology::num_nodes(t))
    }

    fn num_channels(&self) -> usize {
        dispatch!(self, t => Topology::num_channels(t))
    }

    fn channel(&self, id: ChannelId) -> &ChannelDesc {
        dispatch!(self, t => Topology::channel(t, id))
    }

    fn validate(&self) -> Result<(), TopologyError> {
        dispatch!(self, t => Topology::validate(t))
    }

    fn route_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_into(t, src, dst, policy, out))
    }

    fn route_tail_into(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_tail_into(t, src, dst, policy, out))
    }

    fn route_exit_into(
        &self,
        src: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_exit_into(t, src, policy, out))
    }

    fn route_entry_into(
        &self,
        dst: usize,
        policy: AscentPolicy,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_entry_into(t, dst, policy, out))
    }

    fn free_route_digits(&self) -> u32 {
        dispatch!(self, t => Topology::free_route_digits(t))
    }

    fn free_exit_digits(&self) -> u32 {
        dispatch!(self, t => Topology::free_exit_digits(t))
    }

    fn digit_radix(&self) -> u32 {
        dispatch!(self, t => Topology::digit_radix(t))
    }

    fn route_adaptive_into(
        &self,
        src: usize,
        dst: usize,
        digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_adaptive_into(t, src, dst, digits, out))
    }

    fn route_exit_adaptive_into(
        &self,
        src: usize,
        digits: &[u32],
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_exit_adaptive_into(t, src, digits, out))
    }

    fn route_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_into_avoiding(t, src, dst, policy, faults, out))
    }

    fn route_tail_into_avoiding(
        &self,
        src: usize,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_tail_into_avoiding(t, src, dst, policy, faults, out))
    }

    fn route_exit_into_avoiding(
        &self,
        src: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_exit_into_avoiding(t, src, policy, faults, out))
    }

    fn route_entry_into_avoiding(
        &self,
        dst: usize,
        policy: AscentPolicy,
        faults: &FaultSet,
        out: &mut Vec<ChannelId>,
    ) -> Result<u32, TopologyError> {
        dispatch!(self, t => Topology::route_entry_into_avoiding(t, dst, policy, faults, out))
    }

    fn num_route_classes(&self) -> usize {
        dispatch!(self, t => Topology::num_route_classes(t))
    }

    fn route_class_of(&self, node: usize) -> Result<usize, TopologyError> {
        dispatch!(self, t => Topology::route_class_of(t, node))
    }

    fn class_member_of(&self, node: usize) -> Result<usize, TopologyError> {
        dispatch!(self, t => Topology::class_member_of(t, node))
    }

    fn class_first_node(&self, class: usize) -> usize {
        dispatch!(self, t => Topology::class_first_node(t, class))
    }

    fn max_class_members(&self) -> usize {
        dispatch!(self, t => Topology::max_class_members(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json;

    #[test]
    fn trait_routes_match_inherent_graph_routes() {
        let g = Graph::build(MPortNTree::new(4, 2).unwrap());
        let mut via_trait = Vec::new();
        let mut via_inherent = Vec::new();
        for src in 0..g.tree().num_nodes() {
            for dst in 0..g.tree().num_nodes() {
                for policy in [AscentPolicy::TrailingDigits, AscentPolicy::MirrorDescent] {
                    let a = Topology::route_into(&g, src, dst, policy, &mut via_trait).unwrap();
                    let b = g.route_into(src, dst, policy, &mut via_inherent).unwrap();
                    assert_eq!(a, b);
                    assert_eq!(via_trait, via_inherent, "src={src} dst={dst}");
                }
            }
        }
    }

    #[test]
    fn route_query_dispatches_to_each_form() {
        let g = Graph::build(MPortNTree::new(4, 2).unwrap());
        let mut out = Vec::new();
        let mut expect = Vec::new();

        let q = RouteQuery {
            src: 0,
            dst: 5,
            policy: AscentPolicy::TrailingDigits,
            faults: None,
            mode: RouteMode::Deterministic,
        };
        g.route_query(&q, &mut out).unwrap();
        g.route_into(0, 5, AscentPolicy::TrailingDigits, &mut expect)
            .unwrap();
        assert_eq!(out, expect);

        let faults = FaultSet::new();
        let q = RouteQuery {
            faults: Some(&faults),
            ..q
        };
        g.route_query(&q, &mut out).unwrap();
        assert_eq!(out, expect, "empty fault set is byte-identical");

        let digits = [1u32, 0];
        let q = RouteQuery {
            faults: None,
            mode: RouteMode::Adaptive { digits: &digits },
            ..q
        };
        g.route_query(&q, &mut out).unwrap();
        g.route_adaptive_into(0, 5, &digits, &mut expect).unwrap();
        assert_eq!(out, expect);

        let mut faults = FaultSet::new();
        faults.fail_link(ChannelId(0));
        let q = RouteQuery {
            faults: Some(&faults),
            mode: RouteMode::Adaptive { digits: &digits },
            ..q
        };
        assert!(matches!(
            g.route_query(&q, &mut out),
            Err(TopologyError::UnsupportedByBackend { .. })
        ));
    }

    #[test]
    fn torus_shape_validation() {
        assert!(TorusShape::new(&[4, 4]).is_ok());
        assert!(TorusShape::new(&[2, 3, 4]).is_ok());
        assert!(TorusShape::new(&[4]).is_err());
        assert!(TorusShape::new(&[4, 4, 4, 4]).is_err());
        assert!(TorusShape::new(&[1, 4]).is_err());
        assert!(TorusShape::new(&[2000, 4]).is_err());
        assert!(TorusShape::new(&[1024, 1024, 2]).is_err()); // > 2^20 nodes
        let s = TorusShape::new(&[3, 4, 5]).unwrap();
        assert_eq!(s.dims(), &[3, 4, 5]);
        assert_eq!(s.num_nodes(), 60);
    }

    #[test]
    fn topo_spec_serde_round_trips_and_denies_unknown_fields() {
        let tree: TopoSpec = serde_json::from_str(r#"{"kind": "tree"}"#).unwrap();
        assert_eq!(tree, TopoSpec::Tree);
        let torus: TopoSpec = serde_json::from_str(r#"{"kind": "torus", "dims": [4, 4]}"#).unwrap();
        assert_eq!(torus, TopoSpec::Torus(TorusShape::new(&[4, 4]).unwrap()));
        for spec in [tree, torus] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: TopoSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
        assert!(serde_json::from_str::<TopoSpec>(r#"{"kind": "mesh"}"#).is_err());
        assert!(serde_json::from_str::<TopoSpec>(r#"{"kind": "tree", "dims": [4]}"#).is_err());
        assert!(serde_json::from_str::<TopoSpec>(r#"{"kind": "torus"}"#).is_err());
        assert!(serde_json::from_str::<TopoSpec>(r#"{"kind": "torus", "dims": [0, 4]}"#).is_err());
        assert_eq!(TopoSpec::default(), TopoSpec::Tree);
    }
}
