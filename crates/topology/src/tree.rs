//! The m-port n-tree topology (paper §2, ref \[17\]).
//!
//! An m-port n-tree consists of `N = 2(m/2)^n` processing nodes and
//! `N_sw = (2n−1)(m/2)^{n−1}` switches of arity `m`, arranged in `n` levels.
//! Every message between distinct nodes takes `2h` links, where `h` is the
//! level of the nearest common ancestor (NCA) of source and destination —
//! `h` up-links (including the node→switch injection link) followed by `h`
//! down-links (including the final switch→node link).

use crate::error::TopologyError;
use crate::labels::NodeLabel;
use serde::{Deserialize, Serialize};

/// An m-port n-tree topology descriptor.
///
/// This type is cheap to copy; the explicit channel graph is built
/// separately by [`crate::graph::Graph::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MPortNTree {
    m: u32,
    n: u32,
}

impl MPortNTree {
    /// Creates a tree descriptor, validating `m` (even, ≥ 2) and `n` (≥ 1)
    /// and that the node count fits in a `usize`.
    pub fn new(m: u32, n: u32) -> Result<Self, TopologyError> {
        if m < 2 || !m.is_multiple_of(2) {
            return Err(TopologyError::BadPortCount { m });
        }
        if n == 0 {
            return Err(TopologyError::BadTreeHeight { n });
        }
        let k = (m / 2) as u128;
        let nodes = 2u128
            .checked_mul(
                k.checked_pow(n)
                    .ok_or(TopologyError::TooLarge { what: "node count" })?,
            )
            .ok_or(TopologyError::TooLarge { what: "node count" })?;
        if nodes > usize::MAX as u128 / 4 {
            return Err(TopologyError::TooLarge { what: "node count" });
        }
        Ok(Self { m, n })
    }

    /// Switch arity `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Tree height `n` (number of switch levels).
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Half-arity `k = m/2`, the branching factor of non-root levels.
    pub fn k(&self) -> u32 {
        self.m / 2
    }

    /// Number of processing nodes, `N = 2(m/2)^n`.
    pub fn num_nodes(&self) -> usize {
        2 * (self.k() as usize).pow(self.n)
    }

    /// Number of switches, `N_sw = (2n−1)(m/2)^{n−1}`.
    pub fn num_switches(&self) -> usize {
        (2 * self.n as usize - 1) * (self.k() as usize).pow(self.n - 1)
    }

    /// Number of switches at `level ∈ 1..=n`: `(m/2)^{n−1}` at the root
    /// level, `m(m/2)^{n−2}` elsewhere.
    pub fn switches_at_level(&self, level: u32) -> usize {
        assert!(
            (1..=self.n).contains(&level),
            "level {level} out of 1..={}",
            self.n
        );
        let k = self.k() as usize;
        if level == self.n {
            k.pow(self.n - 1)
        } else {
            // Levels below the root all have m·(m/2)^{n−2} switches. When
            // n == 1 the only level is the root, so this branch needs n ≥ 2.
            self.m as usize * k.pow(self.n - 2)
        }
    }

    /// Number of leaf switches: `m(m/2)^{n−2}` for `n ≥ 2`; a single-level
    /// tree has exactly one switch, which is leaf and root at once.
    pub fn num_leaf_switches(&self) -> usize {
        if self.n == 1 {
            1
        } else {
            self.m as usize * (self.k() as usize).pow(self.n - 2)
        }
    }

    /// Index of the leaf switch node `id` attaches to, in `0..num_leaf_switches()`.
    ///
    /// Node ids are the lexicographic encoding of the label with `p_n`
    /// fastest, so the `k = m/2` nodes under one leaf are consecutive and
    /// the leaf index is simply `id / k` (`0` for the single-switch `n = 1`
    /// tree, where all `m` nodes share the one switch).
    pub fn leaf_index_of(&self, id: usize) -> Result<usize, TopologyError> {
        if id >= self.num_nodes() {
            return Err(TopologyError::NodeOutOfRange {
                node: id,
                num_nodes: self.num_nodes(),
            });
        }
        Ok(if self.n == 1 {
            0
        } else {
            id / self.k() as usize
        })
    }

    /// Position of node `id` among the nodes of its leaf switch
    /// (`id % (m/2)`, or `id` itself in the single-switch `n = 1` tree).
    /// Together with [`MPortNTree::leaf_index_of`] this inverts to the node
    /// id via [`MPortNTree::node_under_leaf`].
    pub fn leaf_member_of(&self, id: usize) -> Result<usize, TopologyError> {
        if id >= self.num_nodes() {
            return Err(TopologyError::NodeOutOfRange {
                node: id,
                num_nodes: self.num_nodes(),
            });
        }
        Ok(if self.n == 1 {
            id
        } else {
            id % self.k() as usize
        })
    }

    /// Inverse of `(leaf_index_of, leaf_member_of)`: the node id of member
    /// `member` under leaf switch `leaf`.
    pub fn node_under_leaf(&self, leaf: usize, member: usize) -> usize {
        if self.n == 1 {
            member
        } else {
            leaf * self.k() as usize + member
        }
    }

    /// Canonical **route-equivalence class** of the ordered pair
    /// `(src, dst)`: `(leaf_index_of(src), dst)`.
    ///
    /// For both [`crate::AscentPolicy`] variants, the deterministic
    /// Up*/Down* route of `src → dst` minus its injection channel is a pure
    /// function of this class: the ascent digits are read from the
    /// *destination* label, the descent is fixed by the destination, and
    /// the starting point of the walk is `src`'s leaf switch. Every `src`
    /// under the same leaf therefore shares the whole route tail (and its
    /// NCA level), differing only in the injection channel — the invariant
    /// that makes class-keyed route interning exact (pinned by the
    /// `route_tail_is_class_invariant` test in `graph.rs`).
    pub fn intra_route_class(
        &self,
        src: usize,
        dst: usize,
    ) -> Result<(usize, usize), TopologyError> {
        Ok((self.leaf_index_of(src)?, dst))
    }

    /// Decodes a node id into its mixed-radix label.
    pub fn node_label(&self, id: usize) -> Result<NodeLabel, TopologyError> {
        if id >= self.num_nodes() {
            return Err(TopologyError::NodeOutOfRange {
                node: id,
                num_nodes: self.num_nodes(),
            });
        }
        Ok(NodeLabel::from_id(id, self.m, self.n))
    }

    /// Encodes a label back to a node id.
    pub fn node_id(&self, label: &NodeLabel) -> usize {
        label.to_id(self.m)
    }

    /// The NCA level `h ∈ 0..=n` of two nodes: `0` iff `a == b`, else
    /// `n − common_prefix_len(a, b)`. A message between distinct nodes
    /// crosses `2h` links.
    pub fn nca_level(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        let la = self.node_label(a)?;
        let lb = self.node_label(b)?;
        if a == b {
            return Ok(0);
        }
        Ok(self.n - la.common_prefix_len(&lb) as u32)
    }

    /// Brute-force histogram of NCA levels over all ordered pairs of
    /// distinct nodes: entry `h−1` counts pairs with NCA level `h`.
    ///
    /// Quadratic in `N`; intended for tests and small trees, where it
    /// cross-checks the analytical distribution of Eq. (6).
    pub fn nca_histogram(&self) -> Vec<u64> {
        let n_nodes = self.num_nodes();
        let mut hist = vec![0u64; self.n as usize];
        for a in 0..n_nodes {
            for b in 0..n_nodes {
                if a != b {
                    let h = self.nca_level(a, b).expect("ids in range");
                    hist[(h - 1) as usize] += 1;
                }
            }
        }
        hist
    }

    /// Mean link distance over all ordered pairs of distinct nodes
    /// (`2·E[h]`), computed by brute force. Cross-checks Eq. (9).
    pub fn mean_distance_brute_force(&self) -> f64 {
        let hist = self.nca_histogram();
        let total: u64 = hist.iter().sum();
        let weighted: f64 = hist
            .iter()
            .enumerate()
            .map(|(i, &c)| 2.0 * (i as f64 + 1.0) * c as f64)
            .sum();
        weighted / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_organizations_node_counts() {
        // Table 1 building blocks: m=8 with n=1,2,3 and m=4 with n=3,4,5.
        assert_eq!(MPortNTree::new(8, 1).unwrap().num_nodes(), 8);
        assert_eq!(MPortNTree::new(8, 2).unwrap().num_nodes(), 32);
        assert_eq!(MPortNTree::new(8, 3).unwrap().num_nodes(), 128);
        assert_eq!(MPortNTree::new(4, 3).unwrap().num_nodes(), 16);
        assert_eq!(MPortNTree::new(4, 4).unwrap().num_nodes(), 32);
        assert_eq!(MPortNTree::new(4, 5).unwrap().num_nodes(), 64);
    }

    #[test]
    fn switch_counts_match_formula() {
        for (m, n) in [
            (4u32, 1u32),
            (4, 2),
            (4, 3),
            (8, 1),
            (8, 2),
            (8, 3),
            (16, 2),
        ] {
            let t = MPortNTree::new(m, n).unwrap();
            let k = (m / 2) as usize;
            assert_eq!(
                t.num_switches(),
                (2 * n as usize - 1) * k.pow(n - 1),
                "m={m} n={n}"
            );
            // Per-level counts must sum to the total.
            let by_level: usize = (1..=n).map(|l| t.switches_at_level(l)).sum();
            assert_eq!(by_level, t.num_switches(), "m={m} n={n}");
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(MPortNTree::new(3, 2).is_err());
        assert!(MPortNTree::new(0, 2).is_err());
        assert!(MPortNTree::new(4, 0).is_err());
        assert!(MPortNTree::new(4, 64).is_err()); // overflows
        assert!(MPortNTree::new(16, 40).is_err()); // overflows
    }

    #[test]
    fn nca_level_basic_cases() {
        let t = MPortNTree::new(4, 2).unwrap(); // 8 nodes, labels (p1 in 0..4, p2 in 0..2)
        assert_eq!(t.nca_level(0, 0).unwrap(), 0);
        // Nodes 0 = (0,0) and 1 = (0,1): share p1, differ p2 -> h=1.
        assert_eq!(t.nca_level(0, 1).unwrap(), 1);
        // Nodes 0 = (0,0) and 2 = (1,0): differ p1 -> h=2 (root).
        assert_eq!(t.nca_level(0, 2).unwrap(), 2);
        assert!(t.nca_level(0, 8).is_err());
    }

    #[test]
    fn nca_symmetric() {
        let t = MPortNTree::new(4, 3).unwrap();
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.nca_level(a, b).unwrap(), t.nca_level(b, a).unwrap());
            }
        }
    }

    #[test]
    fn nca_histogram_counts_per_source() {
        // From any source: (m/2 − 1)(m/2)^{h−1} destinations at level h<n,
        // (m−1)(m/2)^{n−1} at level n. Histogram is over ordered pairs, so
        // each per-source count is multiplied by N.
        let t = MPortNTree::new(4, 3).unwrap();
        let n_nodes = t.num_nodes() as u64; // 16
        let hist = t.nca_histogram();
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0], n_nodes); // (2-1)*2^0 = 1
        assert_eq!(hist[1], n_nodes * 2); // (2-1)*2^1 = 2
        assert_eq!(hist[2], n_nodes * 12); // (4-1)*2^2 = 12
        let total: u64 = hist.iter().sum();
        assert_eq!(total, n_nodes * (n_nodes - 1));
    }

    #[test]
    fn single_level_tree_all_pairs_at_root() {
        let t = MPortNTree::new(8, 1).unwrap(); // 8 nodes, 1 switch
        assert_eq!(t.num_switches(), 1);
        let hist = t.nca_histogram();
        assert_eq!(hist, vec![8 * 7]);
        assert!((t.mean_distance_brute_force() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn node_label_round_trip() {
        let t = MPortNTree::new(8, 2).unwrap();
        for id in 0..t.num_nodes() {
            let l = t.node_label(id).unwrap();
            assert_eq!(t.node_id(&l), id);
        }
    }

    #[test]
    fn leaf_partition_round_trips_and_matches_labels() {
        for (m, n) in [(4u32, 1u32), (8, 1), (4, 2), (4, 3), (8, 2), (8, 3)] {
            let t = MPortNTree::new(m, n).unwrap();
            let k = (m / 2) as usize;
            let leaves = t.num_leaf_switches();
            if n == 1 {
                assert_eq!(leaves, 1, "m={m} n={n}");
            } else {
                assert_eq!(leaves, m as usize * k.pow(n - 2), "m={m} n={n}");
                assert_eq!(leaves * k, t.num_nodes(), "m={m} n={n}");
            }
            let mut per_leaf = vec![0usize; leaves];
            for id in 0..t.num_nodes() {
                let leaf = t.leaf_index_of(id).unwrap();
                let member = t.leaf_member_of(id).unwrap();
                assert!(leaf < leaves);
                assert_eq!(t.node_under_leaf(leaf, member), id, "m={m} n={n} id={id}");
                per_leaf[leaf] += 1;
            }
            let expect = if n == 1 { m as usize } else { k };
            assert!(per_leaf.iter().all(|&c| c == expect), "m={m} n={n}");
        }
        assert!(MPortNTree::new(4, 2).unwrap().leaf_index_of(8).is_err());
        assert!(MPortNTree::new(4, 2).unwrap().leaf_member_of(8).is_err());
    }

    #[test]
    fn same_leaf_means_same_label_prefix() {
        // Two nodes share a leaf switch iff their labels agree on every
        // digit but the last — the invariant `intra_route_class` relies on.
        for (m, n) in [(4u32, 2u32), (8, 2), (4, 3)] {
            let t = MPortNTree::new(m, n).unwrap();
            for a in 0..t.num_nodes() {
                for b in 0..t.num_nodes() {
                    let same_leaf = t.leaf_index_of(a).unwrap() == t.leaf_index_of(b).unwrap();
                    let la = t.node_label(a).unwrap();
                    let lb = t.node_label(b).unwrap();
                    let prefix_eq = la.common_prefix_len(&lb) as u32 >= n - 1;
                    assert_eq!(same_leaf, prefix_eq, "m={m} n={n} a={a} b={b}");
                }
            }
        }
    }
}
