//! Label algebra for m-port n-trees.
//!
//! Following Lin's construction (paper ref \[17\]), a processing node is
//! identified by a digit string `p_1 p_2 … p_n` with `p_1 ∈ {0..m−1}` and
//! `p_i ∈ {0..m/2−1}` for `i ≥ 2` — a mixed-radix number with one radix-`m`
//! digit followed by `n−1` radix-`m/2` digits, giving the required
//! `N = m·(m/2)^{n−1} = 2(m/2)^n` nodes.
//!
//! A switch at level `l` is identified by the node digits its subtree fixes
//! plus the up-port choices that reached it:
//!
//! * `fixed = p_1 … p_{n−l}` — every node below this switch shares these
//!   digits (so a level-`l` switch subtends `(m/2)^l` nodes for `l < n`);
//! * `ups = u_1 … u_{l−1}` — each `u ∈ {0..m/2−1}` records the up-port taken
//!   at each ascent, distinguishing the `(m/2)^{l−1}` parallel switches that
//!   fix the same node digits.
//!
//! Root switches (`l = n`) fix nothing and are labelled purely by
//! `n−1` up digits, giving `(m/2)^{n−1}` roots; non-root levels have
//! `m·(m/2)^{n−2}` switches each, for the paper's total
//! `N_sw = (2n−1)(m/2)^{n−1}`.

use serde::{Deserialize, Serialize};

/// A processing-node label: digits `p_1 … p_n`.
///
/// Digit 0 has radix `m`; digits 1.. have radix `m/2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeLabel {
    /// The digits, most significant first (`p_1` is `digits[0]`).
    pub digits: Vec<u32>,
}

impl NodeLabel {
    /// Decodes a node id into its digit string for an (m, n) tree.
    ///
    /// Ids enumerate labels in lexicographic order, `p_n` fastest.
    pub fn from_id(id: usize, m: u32, n: u32) -> Self {
        let k = (m / 2) as usize;
        let mut digits = vec![0u32; n as usize];
        let mut rest = id;
        // Digits p_n .. p_2 are radix m/2.
        for i in (1..n as usize).rev() {
            digits[i] = (rest % k) as u32;
            rest /= k;
        }
        // p_1 is radix m.
        digits[0] = rest as u32;
        Self { digits }
    }

    /// Encodes the digit string back into a node id.
    pub fn to_id(&self, m: u32) -> usize {
        let k = (m / 2) as usize;
        let mut id = self.digits[0] as usize;
        for &d in &self.digits[1..] {
            id = id * k + d as usize;
        }
        id
    }

    /// Length of the longest common prefix with another label.
    pub fn common_prefix_len(&self, other: &NodeLabel) -> usize {
        self.digits
            .iter()
            .zip(&other.digits)
            .take_while(|(a, b)| a == b)
            .count()
    }
}

/// A switch label: the fixed node digits of its subtree plus the up-port
/// digits that reached it. `level = n − fixed.len() = ups.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwitchLabel {
    /// Node digits `p_1 … p_{n−l}` shared by every node in this subtree.
    pub fixed: Vec<u32>,
    /// Up-port digits `u_1 … u_{l−1}`, each in `{0..m/2−1}`.
    pub ups: Vec<u32>,
}

impl SwitchLabel {
    /// The switch level `l ∈ 1..=n` implied by the label shape.
    pub fn level(&self, n: u32) -> u32 {
        debug_assert_eq!(
            self.fixed.len() + self.ups.len(),
            n as usize - 1,
            "switch label has {} fixed + {} up digits, expected n-1 = {}",
            self.fixed.len(),
            self.ups.len(),
            n - 1
        );
        n - self.fixed.len() as u32
    }

    /// The parent reached by taking up-port `u` (drops the last fixed digit).
    ///
    /// Returns `None` for root switches (no fixed digits left).
    pub fn parent(&self, u: u32) -> Option<SwitchLabel> {
        if self.fixed.is_empty() {
            return None;
        }
        let mut fixed = self.fixed.clone();
        fixed.pop();
        let mut ups = self.ups.clone();
        ups.push(u);
        Some(SwitchLabel { fixed, ups })
    }

    /// The child reached by down-port `d` (drops the last up digit and
    /// appends `d` as a new fixed digit).
    ///
    /// Returns `None` for leaf switches (no up digits to drop).
    pub fn child(&self, d: u32) -> Option<SwitchLabel> {
        if self.ups.is_empty() {
            return None;
        }
        let mut ups = self.ups.clone();
        ups.pop();
        let mut fixed = self.fixed.clone();
        fixed.push(d);
        Some(SwitchLabel { fixed, ups })
    }

    /// The leaf switch of a node (fixes `p_1 … p_{n−1}`, no ups).
    pub fn leaf_of(node: &NodeLabel) -> SwitchLabel {
        SwitchLabel {
            fixed: node.digits[..node.digits.len() - 1].to_vec(),
            ups: Vec::new(),
        }
    }
}

/// Enumerates a mixed-radix label space: the first digit has radix
/// `first_radix`, the remaining `len−1` digits radix `rest_radix`.
/// Returns the total count. Used to size switch levels.
pub fn mixed_radix_count(len: usize, first_radix: u32, rest_radix: u32) -> usize {
    if len == 0 {
        return 1;
    }
    first_radix as usize * (rest_radix as usize).pow(len as u32 - 1)
}

/// Encodes a mixed-radix digit string (first digit radix `first_radix`,
/// remainder `rest_radix`) as an index in lexicographic order.
pub fn mixed_radix_encode(digits: &[u32], first_radix: u32, rest_radix: u32) -> usize {
    let _ = first_radix;
    if digits.is_empty() {
        return 0;
    }
    let mut id = digits[0] as usize;
    for &d in &digits[1..] {
        id = id * rest_radix as usize + d as usize;
    }
    id
}

/// Inverse of [`mixed_radix_encode`].
pub fn mixed_radix_decode(
    mut id: usize,
    len: usize,
    first_radix: u32,
    rest_radix: u32,
) -> Vec<u32> {
    let _ = first_radix;
    let mut digits = vec![0u32; len];
    for i in (1..len).rev() {
        digits[i] = (id % rest_radix as usize) as u32;
        id /= rest_radix as usize;
    }
    if len > 0 {
        digits[0] = id as u32;
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_label_round_trip_all_ids() {
        let (m, n) = (8u32, 3u32);
        let num = 2 * (m as usize / 2).pow(n);
        for id in 0..num {
            let label = NodeLabel::from_id(id, m, n);
            assert_eq!(label.digits.len(), n as usize);
            assert!(label.digits[0] < m);
            for &d in &label.digits[1..] {
                assert!(d < m / 2);
            }
            assert_eq!(label.to_id(m), id);
        }
    }

    #[test]
    fn node_label_digit_ranges_m4() {
        let (m, n) = (4u32, 2u32);
        // N = 2 * 2^2 = 8 nodes; first digit 0..4, second 0..2.
        let l = NodeLabel::from_id(7, m, n);
        assert_eq!(l.digits, vec![3, 1]);
        let l = NodeLabel::from_id(0, m, n);
        assert_eq!(l.digits, vec![0, 0]);
    }

    #[test]
    fn common_prefix() {
        let a = NodeLabel {
            digits: vec![1, 2, 3],
        };
        let b = NodeLabel {
            digits: vec![1, 2, 0],
        };
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.common_prefix_len(&a), 3);
        let c = NodeLabel {
            digits: vec![0, 2, 3],
        };
        assert_eq!(a.common_prefix_len(&c), 0);
    }

    #[test]
    fn leaf_switch_and_parent_chain() {
        let node = NodeLabel {
            digits: vec![5, 1, 2],
        };
        let leaf = SwitchLabel::leaf_of(&node);
        assert_eq!(leaf.fixed, vec![5, 1]);
        assert!(leaf.ups.is_empty());
        assert_eq!(leaf.level(3), 1);

        let l2 = leaf.parent(3).unwrap();
        assert_eq!(l2.fixed, vec![5]);
        assert_eq!(l2.ups, vec![3]);
        assert_eq!(l2.level(3), 2);

        let root = l2.parent(0).unwrap();
        assert!(root.fixed.is_empty());
        assert_eq!(root.ups, vec![3, 0]);
        assert_eq!(root.level(3), 3);
        assert!(root.parent(0).is_none());
    }

    #[test]
    fn child_inverts_parent() {
        let leaf = SwitchLabel {
            fixed: vec![5, 1],
            ups: vec![],
        };
        let up = leaf.parent(2).unwrap();
        let back = up.child(1).unwrap();
        assert_eq!(back.fixed, vec![5, 1]);
        assert_eq!(back.ups, vec![]);
        assert!(leaf.child(0).is_none());
    }

    #[test]
    fn mixed_radix_round_trip() {
        let (first, rest, len) = (8u32, 4u32, 3usize);
        let count = mixed_radix_count(len, first, rest);
        assert_eq!(count, 8 * 16);
        for id in 0..count {
            let digits = mixed_radix_decode(id, len, first, rest);
            assert_eq!(mixed_radix_encode(&digits, first, rest), id);
        }
    }

    #[test]
    fn mixed_radix_empty() {
        assert_eq!(mixed_radix_count(0, 8, 4), 1);
        assert_eq!(mixed_radix_encode(&[], 8, 4), 0);
        assert_eq!(mixed_radix_decode(0, 0, 8, 4), Vec::<u32>::new());
    }
}
