//! Serde round-trips for every serialisable topology type — system specs
//! are configuration artifacts users will store in JSON, so stability of
//! the wire format is part of the public contract.

use cocnet_topology::{
    ClusterSpec, MPortNTree, NetworkCharacteristics, NodeLabel, SwitchLabel, SystemSpec,
    TreeMetrics,
};

fn netchar(bw: f64) -> NetworkCharacteristics {
    NetworkCharacteristics::new(bw, 0.01, 0.02).unwrap()
}

#[test]
fn system_spec_round_trips() {
    let c = |n| ClusterSpec {
        n,
        icn1: netchar(500.0),
        ecn1: netchar(250.0),
        topology: Default::default(),
    };
    let spec = SystemSpec::new(4, vec![c(1), c(2), c(2), c(3)], netchar(500.0)).unwrap();
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let back: SystemSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
    assert!(back.validate().is_ok());
    assert_eq!(back.icn2_height().unwrap(), spec.icn2_height().unwrap());
}

#[test]
fn spec_from_handwritten_json() {
    // The format a user would write by hand.
    let json = r#"{
        "m": 4,
        "clusters": [
            {"n": 2, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 2, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 3, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 3, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}}
        ],
        "icn2": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02}
    }"#;
    let spec: SystemSpec = serde_json::from_str(json).unwrap();
    assert!(spec.validate().is_ok());
    assert_eq!(spec.total_nodes(), 48);
}

#[test]
fn torus_spec_round_trips_and_legacy_json_still_parses() {
    use cocnet_topology::{TopoSpec, TorusShape};

    // A hand-written spec mixing a torus cluster with tree clusters.
    let json = r#"{
        "m": 4,
        "clusters": [
            {"icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
             "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01},
             "topology": {"kind": "torus", "dims": [4, 4]}},
            {"n": 3, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 3, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 3, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}}
        ],
        "icn2": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02}
    }"#;
    let spec: SystemSpec = serde_json::from_str(json).unwrap();
    spec.validate().unwrap();
    assert_eq!(
        spec.clusters[0].topology,
        TopoSpec::Torus(TorusShape::new(&[4, 4]).unwrap())
    );
    assert_eq!(spec.clusters[1].topology, TopoSpec::Tree);
    assert_eq!(spec.topology, TopoSpec::Tree, "ICN2 defaults to tree");
    assert_eq!(spec.cluster_nodes(0), 16);
    assert_eq!(spec.total_nodes(), 16 + 3 * 16);

    let back: SystemSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(spec, back);

    // An unknown topology kind fails loudly.
    let bad = json.replace("torus", "mesh");
    assert!(serde_json::from_str::<SystemSpec>(&bad).is_err());
}

#[test]
fn tree_and_labels_round_trip() {
    let tree = MPortNTree::new(8, 3).unwrap();
    let back: MPortNTree = serde_json::from_str(&serde_json::to_string(&tree).unwrap()).unwrap();
    assert_eq!(tree, back);

    let node = NodeLabel {
        digits: vec![5, 1, 2],
    };
    let back: NodeLabel = serde_json::from_str(&serde_json::to_string(&node).unwrap()).unwrap();
    assert_eq!(node, back);

    let sw = SwitchLabel {
        fixed: vec![5],
        ups: vec![3],
    };
    let back: SwitchLabel = serde_json::from_str(&serde_json::to_string(&sw).unwrap()).unwrap();
    assert_eq!(sw, back);
}

#[test]
fn metrics_round_trip() {
    let m = TreeMetrics::compute(&MPortNTree::new(4, 3).unwrap());
    let back: TreeMetrics = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    assert_eq!(m, back);
}
