//! The paper's presets (Tables 1–2) and the figure harness: configuration
//! shapes, qualitative curve properties, and rendering.

use cocnet::prelude::*;
use cocnet::presets;
use cocnet::report::{from_json, render_figure, to_json};

#[test]
fn table1_organizations_are_exact() {
    let s = presets::org_1120();
    assert_eq!((s.total_nodes(), s.num_clusters(), s.m), (1120, 32, 8));
    let heights: Vec<u32> = s.clusters.iter().map(|c| c.n).collect();
    assert_eq!(&heights[..12], &[1; 12]);
    assert_eq!(&heights[12..28], &[2; 16]);
    assert_eq!(&heights[28..], &[3; 4]);

    let s = presets::org_544();
    assert_eq!((s.total_nodes(), s.num_clusters(), s.m), (544, 16, 4));
    let heights: Vec<u32> = s.clusters.iter().map(|c| c.n).collect();
    assert_eq!(&heights[..8], &[3; 8]);
    assert_eq!(&heights[8..11], &[4; 3]);
    assert_eq!(&heights[11..], &[5; 5]);
}

#[test]
fn table2_network_wiring() {
    for spec in [presets::org_1120(), presets::org_544()] {
        for c in &spec.clusters {
            assert_eq!(c.icn1, presets::net1(), "ICN1 uses Net.1");
            assert_eq!(c.ecn1, presets::net2(), "ECN1 uses Net.2");
        }
        assert_eq!(spec.icn2, presets::net1(), "ICN2 uses Net.1");
        // The relaxing factor δ = β_I2/β_E1 = 0.5 for this wiring.
        assert!((spec.relaxing_factor(0) - 0.5).abs() < 1e-12);
    }
}

#[test]
fn all_four_figures_produce_monotone_analysis_curves() {
    for fig in [Figure::Fig3, Figure::Fig4, Figure::Fig5, Figure::Fig6] {
        let cfg = figure_config(fig);
        let series = run_figure_model(&cfg, &ModelOptions::default(), 10);
        assert_eq!(series.len(), 2, "{:?}", fig);
        for s in &series {
            assert!(!s.is_empty(), "{:?} {}", fig, s.label);
            assert!(s.is_monotone_non_decreasing(), "{:?} {}", fig, s.label);
        }
    }
}

#[test]
fn figure_shape_m64_saturates_at_half_the_m32_rate() {
    // Fig. 3 vs Fig. 4 (and Fig. 5 vs Fig. 6): doubling the message length
    // halves the saturation rate (the concentrator service doubles).
    let opts = ModelOptions::default();
    for (spec, wl32, wl64) in [
        (
            presets::org_1120(),
            presets::wl_m32_l256(),
            presets::wl_m64_l256(),
        ),
        (
            presets::org_544(),
            presets::wl_m32_l256(),
            presets::wl_m64_l256(),
        ),
    ] {
        let s32 = saturation_point(&spec, &wl32, &opts, 1e-4).unwrap();
        let s64 = saturation_point(&spec, &wl64, &opts, 1e-4).unwrap();
        let ratio = s32 / s64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }
}

#[test]
fn figure_shape_small_system_sustains_higher_per_node_load() {
    // Figs. 3/5: the N=544 system's x-axis extends twice as far as the
    // N=1120 one before saturation.
    let opts = ModelOptions::default();
    let wl = presets::wl_m32_l256();
    let sat_small = saturation_point(&presets::org_544(), &wl, &opts, 1e-4).unwrap();
    let sat_big = saturation_point(&presets::org_1120(), &wl, &opts, 1e-4).unwrap();
    assert!(
        sat_small > 1.5 * sat_big,
        "small {sat_small:.2e} vs big {sat_big:.2e}"
    );
}

#[test]
fn figure_shape_lm512_curve_sits_roughly_2x_above_lm256() {
    // In every figure the Lm=512 series is about twice the Lm=256 one at
    // light load (service times are dominated by d_m·β).
    let cfg = figure_config(Figure::Fig3);
    let series = run_figure_model(&cfg, &ModelOptions::default(), 10);
    let x = series[0].points[0].x;
    let y256 = series[0].points[0].y;
    let y512 = series[1].interpolate(x).unwrap();
    let ratio = y512 / y256;
    assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
}

#[test]
fn fig7_series_and_ordering() {
    let series = cocnet::experiments::run_fig7(&ModelOptions::default(), 6);
    assert_eq!(series.len(), 4);
    assert_eq!(series[0].label, "N=544, Base");
    assert_eq!(series[3].label, "N=1120, Increased");
    // The boosted N=544 system reaches the farthest rate of the four.
    let max_x = |s: &Series| s.points.last().map(|p| p.x).unwrap_or(0.0);
    assert!(max_x(&series[1]) >= max_x(&series[0]));
    assert!(max_x(&series[3]) >= max_x(&series[2]));
    assert!(max_x(&series[1]) >= max_x(&series[3]));
}

#[test]
fn report_renders_and_round_trips() {
    let cfg = figure_config(Figure::Fig5);
    let series = run_figure_model(&cfg, &ModelOptions::default(), 5);
    let text = render_figure(&cfg.title, &series);
    assert!(text.contains("N=544"));
    assert!(text.contains("Analysis (Lm=256)"));
    // Title + header + rule + one row per distinct rate.
    let distinct_rates = {
        let mut xs: Vec<f64> = series.iter().flat_map(|s| s.xs()).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        xs.len()
    };
    assert_eq!(text.lines().count(), 3 + distinct_rates);
    let json = to_json(&series);
    assert_eq!(from_json(&json).unwrap(), series);
}
