//! Property tests over the simulator: for arbitrary (small) systems,
//! workloads and seeds, structural invariants must hold — message
//! conservation, reproducibility, sane latency bounds, busy-time sanity.

use cocnet::prelude::*;
use proptest::prelude::*;

/// Random small-but-valid system: m ∈ {4, 8}, tree-sized cluster count,
/// heights ≤ 2, Table 2-ish networks with random bandwidth ratios.
fn arb_system() -> impl Strategy<Value = SystemSpec> {
    (
        0u32..2,
        1u32..=2,
        1u32..=2,
        100.0f64..1000.0,
        100.0f64..1000.0,
    )
        .prop_map(|(mi, n_c, height, bw1, bw2)| {
            let m = [4u32, 8][mi as usize];
            let count = 2 * (m as usize / 2).pow(n_c);
            let net1 = NetworkCharacteristics::new(bw1, 0.01, 0.02).unwrap();
            let net2 = NetworkCharacteristics::new(bw2, 0.05, 0.01).unwrap();
            let cluster = ClusterSpec {
                n: height,
                icn1: net1,
                ecn1: net2,
                topology: Default::default(),
            };
            SystemSpec::new(m, vec![cluster; count], net1).unwrap()
        })
}

fn quick_cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 100,
        measured: 1_000,
        drain: 100,
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_and_bounds(
        spec in arb_system(),
        seed in 0u64..1000,
        rate_exp in -5.0f64..-3.0,
        m_flits in 2u32..40,
    ) {
        let rate = 10f64.powf(rate_exp);
        let wl = Workload::new(rate, m_flits, 256.0).unwrap();
        let r = run_simulation(&spec, &wl, Pattern::Uniform, &quick_cfg(seed));
        prop_assume!(r.completed); // extreme corners may saturate; skip

        // Conservation: intra + inter recorded == total recorded.
        prop_assert_eq!(r.intra.count + r.inter.count, r.delivered_recorded);
        prop_assert_eq!(r.delivered_recorded, 1_000);
        prop_assert!(r.generated >= r.delivered_recorded);
        prop_assert!(r.generated <= 1_200);

        // Latency lower bound: no message can beat its serialization time
        // on the fastest network in the system.
        let min_t = spec
            .clusters
            .iter()
            .map(|c| c.icn1.t_cn(256.0))
            .fold(f64::INFINITY, f64::min)
            .min(spec.icn2.t_cn(256.0));
        prop_assert!(r.latency.min >= (m_flits as f64 - 1.0) * min_t);

        // Busy fractions within [0, 1].
        for &b in &r.channel_busy {
            prop_assert!(b >= 0.0);
            prop_assert!(b <= r.sim_time * (1.0 + 1e-9));
        }
    }

    #[test]
    fn reproducibility(spec in arb_system(), seed in 0u64..1000) {
        let wl = Workload::new(1e-4, 8, 256.0).unwrap();
        let a = run_simulation(&spec, &wl, Pattern::Uniform, &quick_cfg(seed));
        let b = run_simulation(&spec, &wl, Pattern::Uniform, &quick_cfg(seed));
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(a.sim_time, b.sim_time);
        prop_assert_eq!(a.channel_busy, b.channel_busy);
    }

    #[test]
    fn model_is_always_optimistic_or_close(
        spec in arb_system(),
        seed in 0u64..100,
    ) {
        // At light load the model may sit below the simulation by the
        // documented offset, but must never exceed it by more than noise.
        let wl = Workload::new(5e-5, 16, 256.0).unwrap();
        let model = evaluate(&spec, &wl, &ModelOptions::default());
        prop_assume!(model.is_ok());
        let sim = run_simulation(&spec, &wl, Pattern::Uniform, &quick_cfg(seed));
        prop_assume!(sim.completed);
        let m = model.unwrap().latency;
        prop_assert!(
            m < sim.latency.mean * 1.10,
            "model {} far above sim {}",
            m,
            sim.latency.mean
        );
        prop_assert!(m > sim.latency.mean * 0.3);
    }

    #[test]
    fn locality_never_hurts_when_intra_is_fastest(
        spec in arb_system(),
        seed in 0u64..100,
    ) {
        // Only a theorem when the intra-cluster network is at least as fast
        // as the inter-cluster ones (the realistic configuration, and the
        // paper's Table 2 wiring). A slower ICN1 can legitimately make
        // local traffic the worse deal.
        prop_assume!(
            spec.clusters[0].icn1.bandwidth >= spec.clusters[0].ecn1.bandwidth
        );
        let wl = Workload::new(1e-4, 8, 256.0).unwrap();
        let uni = run_simulation(&spec, &wl, Pattern::Uniform, &quick_cfg(seed));
        let local = run_simulation(
            &spec,
            &wl,
            Pattern::ClusterLocal { locality: 0.9 },
            &quick_cfg(seed),
        );
        prop_assume!(uni.completed && local.completed);
        // Local traffic avoids the slow ECN1/ICN2 path; with identical
        // seeds and light load this is essentially deterministic.
        prop_assert!(local.latency.mean <= uni.latency.mean * 1.05);
    }
}
