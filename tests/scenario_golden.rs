//! Golden equivalence between the committed `scenarios/*.json` files and
//! their hand-coded registry twins: the files must parse to *exactly* the
//! scenario the registry builds (pinned via the serialised form) and must
//! produce bit-identical `run_sim` output — so editing either side without
//! the other fails loudly.

use cocnet::registry;
use cocnet::runner::Scenario;
use cocnet::sim::SimConfig;
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn committed_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "scenarios/ holds committed files");
    files
}

fn load(path: &Path) -> Scenario {
    let text = std::fs::read_to_string(path).unwrap();
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_committed_file_matches_its_registry_twin() {
    for path in committed_files() {
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let entry = registry::find(&stem)
            .unwrap_or_else(|| panic!("{}: no registry entry named {stem:?}", path.display()));
        let twin = entry.scenario().unwrap_or_else(|| {
            panic!(
                "{}: registry entry {stem:?} is not declarative",
                path.display()
            )
        });
        let loaded = load(&path);
        loaded.validate().unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&loaded).unwrap(),
            serde_json::to_string_pretty(&twin).unwrap(),
            "{}: committed file drifted from its registry twin \
             (regenerate with `cocnet describe {stem} --json`)",
            path.display()
        );
    }
}

#[test]
fn every_declarative_entry_has_a_committed_twin() {
    for entry in registry::all() {
        if entry.scenario().is_some() {
            let path = scenarios_dir().join(format!("{}.json", entry.name));
            assert!(
                path.exists(),
                "registry entry {} has no committed twin {}",
                entry.name,
                path.display()
            );
        }
    }
}

/// A test-sized population: small enough to run every committed scenario,
/// identical between the two sides being compared.
fn tiny(sim: &SimConfig) -> SimConfig {
    SimConfig {
        warmup: 200,
        measured: 2_000,
        drain: 200,
        ..*sim
    }
}

#[test]
fn committed_files_run_bit_identical_to_their_twins() {
    for path in committed_files() {
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let mut loaded = load(&path);
        let mut twin = registry::find(&stem).unwrap().scenario().unwrap();
        for s in [&mut loaded, &mut twin] {
            s.sim = tiny(&s.sim);
            s.rates = s.rates.with_steps(3);
            s.replications = 1;
        }
        let from_file = loaded.run_sim();
        let from_registry = twin.run_sim();
        assert_eq!(
            from_file,
            from_registry,
            "{}: run_sim output differs from registry twin",
            path.display()
        );
        assert!(
            from_file.iter().any(|s| !s.is_empty()),
            "{}: tiny run produced no points at all",
            path.display()
        );
    }
}
