//! Golden equivalence between the committed `scenarios/*.json` files and
//! their hand-coded registry twins: the files must parse to *exactly* the
//! scenario the registry builds (pinned via the serialised form) and must
//! produce bit-identical `run_sim` output — so editing either side without
//! the other fails loudly.

use cocnet::registry;
use cocnet::runner::Scenario;
use cocnet::sim::SimConfig;
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn committed_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "scenarios/ holds committed files");
    files
}

fn load(path: &Path) -> Scenario {
    let text = std::fs::read_to_string(path).unwrap();
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_committed_file_matches_its_registry_twin() {
    for path in committed_files() {
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let entry = registry::find(&stem)
            .unwrap_or_else(|| panic!("{}: no registry entry named {stem:?}", path.display()));
        let loaded = load(&path);
        loaded.validate().unwrap();
        // A custom (non-declarative) entry has no scenario twin to compare
        // against; its committed file is a standalone profile, pinned by a
        // dedicated test below (e.g. `degradation.json`).
        let Some(twin) = entry.scenario() else {
            continue;
        };
        assert_eq!(
            serde_json::to_string_pretty(&loaded).unwrap(),
            serde_json::to_string_pretty(&twin).unwrap(),
            "{}: committed file drifted from its registry twin \
             (regenerate with `cocnet describe {stem} --json`)",
            path.display()
        );
    }
}

#[test]
fn every_declarative_entry_has_a_committed_twin() {
    for entry in registry::all() {
        if entry.scenario().is_some() {
            let path = scenarios_dir().join(format!("{}.json", entry.name));
            assert!(
                path.exists(),
                "registry entry {} has no committed twin {}",
                entry.name,
                path.display()
            );
        }
    }
}

/// A test-sized population: small enough to run every committed scenario,
/// identical between the two sides being compared.
fn tiny(sim: &SimConfig) -> SimConfig {
    SimConfig {
        warmup: 200,
        measured: 2_000,
        drain: 200,
        ..sim.clone()
    }
}

#[test]
fn committed_files_run_bit_identical_to_their_twins() {
    for path in committed_files() {
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let mut loaded = load(&path);
        let Some(mut twin) = registry::find(&stem).unwrap().scenario() else {
            continue; // custom entry: pinned by its dedicated test below
        };
        for s in [&mut loaded, &mut twin] {
            s.sim = tiny(&s.sim);
            s.rates = s.rates.with_steps(3);
            s.replications = 1;
        }
        let from_file = loaded.run_sim();
        let from_registry = twin.run_sim();
        assert_eq!(
            from_file,
            from_registry,
            "{}: run_sim output differs from registry twin",
            path.display()
        );
        assert!(
            from_file.iter().any(|s| !s.is_empty()),
            "{}: tiny run produced no points at all",
            path.display()
        );
    }
}

/// The committed `degradation.json` is the standalone faulted profile of
/// the *custom* `degradation` registry entry (its fraction sweep has no
/// declarative twin). This pins the hard guarantees the twin comparison
/// cannot: a faulted scenario run is deterministic — serial == parallel
/// and heap == calendar, f64-bit-identically — degrades delivery without
/// silently losing a single message, and terminates by draining its event
/// queue instead of hanging.
#[test]
fn degradation_file_is_deterministic_and_degrades_gracefully() {
    use cocnet::sim::{SchedulerKind, StopReason};

    let path = scenarios_dir().join("degradation.json");
    let mut scenario = load(&path);
    scenario.validate().unwrap();
    assert!(
        !scenario.sim.faults.is_inert(),
        "degradation.json must carry an active faults block"
    );
    scenario.sim = tiny(&scenario.sim);
    scenario.rates = scenario.rates.with_steps(3);
    scenario.replications = 1;

    let dump = |detailed: &[Vec<cocnet::runner::PointSim>]| -> Vec<String> {
        detailed
            .iter()
            .flatten()
            .flat_map(|p| p.runs.iter())
            .map(|r| serde_json::to_string(r).unwrap())
            .collect()
    };

    let parallel = scenario.run_sim_detailed();
    let serial = scenario.run_sim_detailed_serial();
    assert_eq!(
        dump(&parallel),
        dump(&serial),
        "faulted runs must be bit-identical between serial and parallel execution"
    );

    let mut calendar = scenario.clone();
    calendar.sim.scheduler = SchedulerKind::Calendar;
    assert_eq!(
        dump(&parallel),
        dump(&calendar.run_sim_detailed()),
        "faulted runs must be bit-identical between heap and calendar schedulers"
    );

    for point in parallel.iter().flatten() {
        for r in &point.runs {
            assert_eq!(r.stop, StopReason::Drained, "faulted run exits by draining");
            assert!(!r.completed);
            assert_eq!(
                r.generated,
                r.delivered_total + r.unreachable,
                "no message may be silently lost"
            );
            assert!(r.unreachable > 0, "10% failed links partition some pairs");
            assert!(r.delivered_total > 0, "most pairs still deliver");
        }
    }
}

/// The committed `torus_sweep.json` is the declarative twin of the first
/// non-tree registry entry: four 4×4 torus clusters under an m=4 ICN2
/// tree. The twin comparison above already pins file == registry; this
/// pins the determinism contract of the torus backend itself — the sweep
/// is f64-bit-identical across the serial and cluster-sharded engines on
/// both scheduler backends, and (being sim-only) the spec is outside the
/// analytical model's coverage.
#[test]
fn torus_file_is_bit_identical_across_engines_and_schedulers() {
    use cocnet::model::{coverage, ModelCoverage};
    use cocnet::sim::{SchedulerKind, ShardMode};

    let path = scenarios_dir().join("torus_sweep.json");
    let mut scenario = load(&path);
    scenario.validate().unwrap();
    assert!(
        matches!(coverage(&scenario.spec), ModelCoverage::SimOnly { .. }),
        "torus_sweep.json must be a sim-only scenario"
    );
    scenario.sim = tiny(&scenario.sim);
    scenario.rates = scenario.rates.with_steps(3);
    scenario.replications = 1;

    // `peak_live_msgs` is documented shard-local (the sharded engine
    // reports its largest per-shard slab, the serial engine the global
    // one); every other field must match to the bit.
    let dump = |detailed: &[Vec<cocnet::runner::PointSim>]| -> Vec<String> {
        detailed
            .iter()
            .flatten()
            .flat_map(|p| p.runs.iter())
            .map(|r| {
                let mut r = r.clone();
                r.peak_live_msgs = 0;
                serde_json::to_string(&r).unwrap()
            })
            .collect()
    };

    let mut variants = Vec::new();
    for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        for shards in [ShardMode::Off, ShardMode::Auto] {
            let mut s = scenario.clone();
            s.sim.scheduler = scheduler;
            s.sim.shards = shards;
            variants.push((
                format!("{scheduler:?}/{shards:?}"),
                dump(&s.run_sim_detailed()),
            ));
        }
    }
    let (base_name, base) = &variants[0];
    assert!(
        base.iter().any(|r| !r.is_empty()),
        "tiny torus run produced no points at all"
    );
    for (name, output) in &variants[1..] {
        assert_eq!(
            base, output,
            "torus sweep must be bit-identical between {base_name} and {name}"
        );
    }
}

/// The committed `org_scale.json` is the standalone 2048-endpoint profile
/// of the *custom* `org_scale` registry entry (its sweep axis is org
/// size, not rate, so there is no declarative twin). It pins the route-
/// interning guarantee end to end: the class-keyed table (the file's
/// explicit `"interning": "Classed"`) and the eager all-pairs oracle
/// produce f64-bit-identical simulation output on an organization an
/// order of magnitude larger than the golden-regression specs.
#[test]
fn org_scale_file_runs_bit_identical_across_intern_modes() {
    use cocnet::sim::InternMode;

    let path = scenarios_dir().join("org_scale.json");
    let mut scenario = load(&path);
    scenario.validate().unwrap();
    assert_eq!(scenario.spec.total_nodes(), 2048);
    assert_eq!(scenario.sim.interning, InternMode::Classed);
    scenario.sim = tiny(&scenario.sim);
    scenario.rates = scenario.rates.with_steps(2);
    scenario.replications = 1;

    let dump = |detailed: &[Vec<cocnet::runner::PointSim>]| -> Vec<String> {
        detailed
            .iter()
            .flatten()
            .flat_map(|p| p.runs.iter())
            .map(|r| serde_json::to_string(r).unwrap())
            .collect()
    };

    let classed = scenario.run_sim_detailed();
    let mut eager = scenario.clone();
    eager.sim.interning = InternMode::Eager;
    assert_eq!(
        dump(&classed),
        dump(&eager.run_sim_detailed()),
        "classed and eager interning must be bit-identical end to end"
    );
    assert!(
        classed.iter().flatten().any(|p| !p.runs.is_empty()),
        "tiny org_scale run produced no points at all"
    );
}
