//! Seed-pinned golden statistics: the interned-route/slab rework of the
//! simulators must be **bit-identical** to the PR-1 seed behaviour. Each
//! case pins `latency.mean` (as raw f64 bits), the recorded count, the
//! generated population and the final simulation clock for a fixed seed —
//! and every case is checked under **both** event-scheduler backends
//! (binary heap and calendar queue), so a backend can never drift from
//! the pinned seed behaviour.
//!
//! If a change legitimately alters simulation semantics (not just its
//! implementation), regenerate the constants with
//! `cargo test --release -p cocnet --test golden_regression -- --ignored --nocapture`
//! and say so loudly in the PR.

use cocnet::prelude::*;
use cocnet::sim::{run_simulation_flit, Coupling, InternMode, SchedulerKind, ShardMode};

fn hetero_spec() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    SystemSpec::new(4, vec![c(1), c(2), c(2), c(3)], net1).unwrap()
}

fn wide_spec() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    let clusters = vec![c(1), c(1), c(2), c(2), c(1), c(2), c(1), c(1)];
    SystemSpec::new(8, clusters, net2).unwrap()
}

fn cfg_with(seed: u64, scheduler: SchedulerKind) -> SimConfig {
    SimConfig {
        warmup: 500,
        measured: 5_000,
        drain: 500,
        seed,
        scheduler,
        shards: SHARDS.with(|s| s.get()),
        interning: INTERN.with(|i| i.get()),
        ..SimConfig::default()
    }
}

// Threaded into every observed config so the same pinned table checks
// the serial oracle and the cluster-sharded engine alike — and, since
// PR 9, the class-keyed route table (the default) against the eager
// all-pairs interning oracle.
thread_local! {
    static SHARDS: std::cell::Cell<ShardMode> = const { std::cell::Cell::new(ShardMode::Off) };
    static INTERN: std::cell::Cell<InternMode> =
        const { std::cell::Cell::new(InternMode::Classed) };
}

/// One pinned observation.
struct Golden {
    name: &'static str,
    mean_bits: u64,
    count: u64,
    generated: u64,
    sim_time_bits: u64,
}

fn observe(scheduler: SchedulerKind) -> Vec<(&'static str, cocnet::sim::SimResults)> {
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let hetero = hetero_spec();
    let wide = wide_spec();
    vec![
        (
            "vct_uniform",
            run_simulation(&hetero, &wl, Pattern::Uniform, &cfg_with(99, scheduler)),
        ),
        (
            "saf_uniform",
            run_simulation(
                &hetero,
                &wl,
                Pattern::Uniform,
                &SimConfig {
                    coupling: Coupling::StoreAndForward,
                    ..cfg_with(99, scheduler)
                },
            ),
        ),
        (
            "cut_through_uniform",
            run_simulation(
                &hetero,
                &wl,
                Pattern::Uniform,
                &SimConfig {
                    coupling: Coupling::CutThrough,
                    ..cfg_with(99, scheduler)
                },
            ),
        ),
        (
            "adaptive_vct_uniform",
            run_simulation(
                &hetero,
                &wl,
                Pattern::Uniform,
                &SimConfig {
                    adaptive_routing: true,
                    ..cfg_with(99, scheduler)
                },
            ),
        ),
        (
            "flit_saf_uniform",
            run_simulation_flit(
                &hetero,
                &Workload::new(2e-4, 8, 256.0).unwrap(),
                Pattern::Uniform,
                &SimConfig {
                    coupling: Coupling::StoreAndForward,
                    ..cfg_with(99, scheduler)
                },
            ),
        ),
        (
            "vct_cluster_local",
            run_simulation(
                &hetero,
                &wl,
                Pattern::ClusterLocal { locality: 0.8 },
                &cfg_with(7, scheduler),
            ),
        ),
        (
            "vct_wide_m8_complement",
            run_simulation(&wide, &wl, Pattern::Complement, &cfg_with(1234, scheduler)),
        ),
    ]
}

/// Regenerates the table below; run with `-- --ignored --nocapture`.
#[test]
#[ignore]
fn print_golden_values() {
    for (name, r) in observe(SchedulerKind::Heap) {
        println!(
            "    Golden {{ name: \"{name}\", mean_bits: 0x{:016x}, count: {}, generated: {}, sim_time_bits: 0x{:016x} }},",
            r.latency.mean.to_bits(),
            r.latency.count,
            r.generated,
            r.sim_time.to_bits(),
        );
    }
}

const GOLDEN: &[Golden] = &[
    // Captured from the PR-1 seed engine via `print_golden_values`.
    Golden {
        name: "vct_uniform",
        mean_bits: 0x404648d3b5cc952d,
        count: 5000,
        generated: 5500,
        sim_time_bits: 0x4126e1bf19c501a5,
    },
    Golden {
        name: "saf_uniform",
        mean_bits: 0x4050d213417c825f,
        count: 5000,
        generated: 5500,
        sim_time_bits: 0x4126e1bf19c501a5,
    },
    Golden {
        name: "cut_through_uniform",
        mean_bits: 0x4040ba03960355ac,
        count: 5000,
        generated: 5500,
        sim_time_bits: 0x4126e1bf19c501a5,
    },
    Golden {
        name: "adaptive_vct_uniform",
        mean_bits: 0x404641b714a5fbec,
        count: 5000,
        generated: 5500,
        sim_time_bits: 0x412701258f85f929,
    },
    Golden {
        name: "flit_saf_uniform",
        mean_bits: 0x4032ca1e28633fe3,
        count: 5000,
        generated: 5500,
        sim_time_bits: 0x4126e1c68c75226a,
    },
    Golden {
        name: "vct_cluster_local",
        mean_bits: 0x4039f1480bd82bb3,
        count: 5000,
        generated: 5500,
        sim_time_bits: 0x412793ad0223bb36,
    },
    Golden {
        name: "vct_wide_m8_complement",
        mean_bits: 0x40426d925ff5f474,
        count: 5000,
        generated: 5500,
        sim_time_bits: 0x41095c452392d2c4,
    },
];

/// Checks one backend's observations against the pinned constants.
fn assert_matches_golden(scheduler: SchedulerKind) {
    let observed = observe(scheduler);
    check_golden(scheduler, &observed);
}

fn check_golden(scheduler: SchedulerKind, observed: &[(&'static str, cocnet::sim::SimResults)]) {
    assert_eq!(observed.len(), GOLDEN.len());
    for (g, (name, r)) in GOLDEN.iter().zip(observed) {
        assert_eq!(g.name, *name, "case order changed");
        assert!(r.completed, "{name} [{scheduler}]: run must complete");
        assert_eq!(
            g.mean_bits,
            r.latency.mean.to_bits(),
            "{name} [{scheduler}]: latency.mean drifted ({} vs expected {})",
            r.latency.mean,
            f64::from_bits(g.mean_bits),
        );
        assert_eq!(
            g.count, r.latency.count,
            "{name} [{scheduler}]: latency.count drifted"
        );
        assert_eq!(
            g.generated, r.generated,
            "{name} [{scheduler}]: generated drifted"
        );
        assert_eq!(
            g.sim_time_bits,
            r.sim_time.to_bits(),
            "{name} [{scheduler}]: sim_time drifted ({} vs expected {})",
            r.sim_time,
            f64::from_bits(g.sim_time_bits),
        );
    }
}

#[test]
fn statistics_bit_identical_to_seed_behaviour() {
    assert!(
        !GOLDEN.is_empty(),
        "golden table is empty; regenerate with print_golden_values"
    );
    assert_matches_golden(SchedulerKind::Heap);
}

#[test]
fn calendar_scheduler_matches_the_same_goldens() {
    // The scheduler backend is pure mechanism: the calendar queue must
    // reproduce the PR-1 seed statistics f64-bit-exactly, same as the
    // heap — across couplings, adaptive routing and the flit engine.
    assert_matches_golden(SchedulerKind::Calendar);
}

#[test]
fn sharded_engine_matches_the_same_goldens() {
    // Intra-run sharding is likewise pure mechanism: the cluster-sharded
    // parallel engine must reproduce the PR-1 seed statistics f64-bit-
    // exactly on every pinned case, under both scheduler backends. (The
    // flit-level case ignores the mode and runs serial.)
    for shards in [ShardMode::Auto, ShardMode::N(2)] {
        SHARDS.with(|s| s.set(shards));
        for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let observed = observe(scheduler);
            check_golden(scheduler, &observed);
        }
    }
    SHARDS.with(|s| s.set(ShardMode::Off));
}

#[test]
fn eager_interning_oracle_matches_the_same_goldens() {
    // Route interning is pure mechanism too: the class-keyed table (the
    // default every other test in this file now runs on) and the eager
    // all-pairs oracle must reproduce the PR-1 seed statistics f64-bit-
    // exactly — under both schedulers, and serial as well as sharded.
    // With the other tests pinning the classed path, this is the end-to-
    // end classed-vs-eager determinism cross-check.
    INTERN.with(|i| i.set(InternMode::Eager));
    for scheduler in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        assert_matches_golden(scheduler);
    }
    SHARDS.with(|s| s.set(ShardMode::N(2)));
    assert_matches_golden(SchedulerKind::Heap);
    SHARDS.with(|s| s.set(ShardMode::Off));
    INTERN.with(|i| i.set(InternMode::Classed));
}
