//! Serde round-trips and hygiene for the declarative scenario layer:
//! every spec type survives JSON, missing optional fields take their
//! documented defaults, and unknown fields fail loudly (the
//! `deny_unknown_fields` contract that keeps committed scenario files
//! honest).

use cocnet::model::{ModelOptions, VarianceApprox, Workload};
use cocnet::prelude::*;
use cocnet::presets;
use cocnet::runner::{RateGrid, WorkloadEntry};
use cocnet::sim::Coupling;
use cocnet_workloads::ArrivalSpec;

fn round_trip<T: serde::Serialize + serde::Deserialize>(value: &T) -> T {
    let json = serde_json::to_string_pretty(value).expect("serialises");
    serde_json::from_str(&json).expect("parses back")
}

/// The paper-shaped scenario used throughout this file.
fn scenario() -> Scenario {
    Scenario::new("test scenario", presets::org_544())
        .with_workload("Lm=256", presets::wl_m32_l256())
        .with_workload("Lm=512", presets::wl_m32_l512())
        .with_grid(1e-3, 10)
        .with_replications(2)
        .with_seeding(Seeding::PerPoint)
        .with_pattern(Pattern::ClusterLocal { locality: 0.4 })
}

#[test]
fn workload_round_trips() {
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    assert_eq!(round_trip(&wl), wl);
}

#[test]
fn workload_rejects_unknown_field() {
    let err = serde_json::from_str::<Workload>(
        r#"{"lambda_g": 1e-4, "msg_flits": 32, "flit_bytes": 256.0, "flit_byts": 1}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("flit_byts"), "{err}");
}

#[test]
fn model_options_round_trip_and_default() {
    for opts in [
        ModelOptions::default(),
        ModelOptions {
            relaxing_factor: false,
            variance: VarianceApprox::Zero,
        },
    ] {
        assert_eq!(round_trip(&opts), opts);
    }
    // Container-level #[serde(default)]: {} is the paper's options.
    let parsed: ModelOptions = serde_json::from_str("{}").unwrap();
    assert_eq!(parsed, ModelOptions::default());
    let parsed: ModelOptions = serde_json::from_str(r#"{"relaxing_factor": false}"#).unwrap();
    assert!(!parsed.relaxing_factor);
    assert_eq!(parsed.variance, VarianceApprox::DraperGhosh);
}

#[test]
fn sim_config_round_trip_default_and_unknown() {
    let cfg = SimConfig {
        seed: 7,
        coupling: Coupling::StoreAndForward,
        histogram: Some((500.0, 32)),
        ..SimConfig::default()
    };
    assert_eq!(round_trip(&cfg), cfg);
    // Missing fields come from the paper's §4 methodology defaults.
    let parsed: SimConfig = serde_json::from_str(r#"{"seed": 9}"#).unwrap();
    assert_eq!(parsed.seed, 9);
    assert_eq!(parsed.warmup, SimConfig::default().warmup);
    assert_eq!(parsed.measured, SimConfig::default().measured);
    // Typos fail loudly.
    let err = serde_json::from_str::<SimConfig>(r#"{"sede": 9}"#).unwrap_err();
    assert!(err.to_string().contains("sede"), "{err}");
}

#[test]
fn scheduler_field_round_trips_and_defaults_to_heap() {
    use cocnet::sim::SchedulerKind;
    // Files predating the field keep the heap backend.
    let parsed: SimConfig = serde_json::from_str(r#"{"seed": 9}"#).unwrap();
    assert_eq!(parsed.scheduler, SchedulerKind::Heap);
    // The declarable form is the bare variant name.
    let parsed: SimConfig = serde_json::from_str(r#"{"scheduler": "Calendar"}"#).unwrap();
    assert_eq!(parsed.scheduler, SchedulerKind::Calendar);
    let cfg = SimConfig {
        scheduler: SchedulerKind::Calendar,
        ..SimConfig::default()
    };
    assert_eq!(round_trip(&cfg), cfg);
    assert!(serde_json::to_string(&cfg)
        .unwrap()
        .contains("\"Calendar\""));
    // An unknown backend fails loudly.
    assert!(serde_json::from_str::<SimConfig>(r#"{"scheduler": "Ladder"}"#).is_err());
    // And a scenario threads it through.
    let mut s = scenario();
    s.sim.scheduler = SchedulerKind::Calendar;
    let json = serde_json::to_string_pretty(&s).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back.sim.scheduler, SchedulerKind::Calendar);
    back.validate().unwrap();
}

#[test]
fn shards_field_round_trips_and_defaults_to_off() {
    use cocnet::sim::ShardMode;
    // Files predating the field stay on the serial engine.
    let parsed: SimConfig = serde_json::from_str(r#"{"seed": 9}"#).unwrap();
    assert_eq!(parsed.shards, ShardMode::Off);
    // Bare variant name for the symbolic modes, {"N": k} for a count.
    let parsed: SimConfig = serde_json::from_str(r#"{"shards": "Auto"}"#).unwrap();
    assert_eq!(parsed.shards, ShardMode::Auto);
    let parsed: SimConfig = serde_json::from_str(r#"{"shards": {"N": 4}}"#).unwrap();
    assert_eq!(parsed.shards, ShardMode::N(4));
    let cfg = SimConfig {
        shards: ShardMode::Auto,
        ..SimConfig::default()
    };
    assert_eq!(round_trip(&cfg), cfg);
    assert!(serde_json::to_string(&cfg).unwrap().contains(r#""Auto""#));
    // An unknown mode fails loudly.
    assert!(serde_json::from_str::<SimConfig>(r#"{"shards": "Many"}"#).is_err());
    // And a scenario threads it through validation unchanged.
    let mut s = scenario();
    s.sim.shards = ShardMode::N(2);
    let json = serde_json::to_string_pretty(&s).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back.sim.shards, ShardMode::N(2));
    back.validate().unwrap();
}

#[test]
fn pattern_variants_round_trip() {
    for pattern in [
        Pattern::Uniform,
        Pattern::Hotspot {
            hotspot: 3,
            fraction: 0.25,
        },
        Pattern::ClusterLocal { locality: 0.8 },
        Pattern::ClusterShift { shift: 2 },
        Pattern::Complement,
    ] {
        assert_eq!(round_trip(&pattern), pattern);
    }
    assert_eq!(Pattern::default(), Pattern::Uniform);
}

#[test]
fn pattern_variant_rejects_unknown_field() {
    let err =
        serde_json::from_str::<Pattern>(r#"{"ClusterLocal": {"locallity": 0.8}}"#).unwrap_err();
    assert!(err.to_string().contains("locallity"), "{err}");
}

#[test]
fn arrival_spec_round_trips() {
    for spec in [
        ArrivalSpec::Poisson { rate: 2e-4 },
        ArrivalSpec::bursty(2e-4, 0.25, 8.0),
    ] {
        assert_eq!(round_trip(&spec), spec);
    }
}

#[test]
fn seeding_round_trips_as_bare_strings() {
    for seeding in [Seeding::Shared, Seeding::PerPoint] {
        assert_eq!(round_trip(&seeding), seeding);
    }
    assert_eq!(
        serde_json::to_string(&Seeding::PerPoint).unwrap(),
        "\"PerPoint\""
    );
}

#[test]
fn rate_grid_list_and_range_forms() {
    let list = RateGrid::List(vec![1e-4, 2e-4, 3e-4]);
    assert_eq!(round_trip(&list), list);
    let range = RateGrid::Range {
        start: 0.0,
        stop: 5e-4,
        steps: 10,
    };
    assert_eq!(round_trip(&range), range);
    // A bare array is a list; an object is a range; start defaults to 0.
    let parsed: RateGrid = serde_json::from_str("[1e-4, 2e-4]").unwrap();
    assert_eq!(parsed, RateGrid::List(vec![1e-4, 2e-4]));
    let parsed: RateGrid = serde_json::from_str(r#"{"stop": 5e-4, "steps": 4}"#).unwrap();
    assert_eq!(
        parsed,
        RateGrid::Range {
            start: 0.0,
            stop: 5e-4,
            steps: 4
        }
    );
    let err = serde_json::from_str::<RateGrid>(r#"{"stop": 5e-4, "stepz": 4}"#).unwrap_err();
    assert!(err.to_string().contains("stepz"), "{err}");
    let err = serde_json::from_str::<RateGrid>("3.5").unwrap_err();
    assert!(err.to_string().contains("rate list"), "{err}");
}

#[test]
fn range_grid_resolves_bit_identical_to_rate_grid() {
    let range = RateGrid::Range {
        start: 0.0,
        stop: 5e-4,
        steps: 10,
    };
    let classic = cocnet::model::rate_grid(5e-4, 10);
    assert_eq!(range.values(), classic);
    assert_eq!(range.len(), 10);
    // Non-zero start: steps evenly spaced points in (start, stop].
    let shifted = RateGrid::Range {
        start: 1e-4,
        stop: 3e-4,
        steps: 4,
    };
    let values = shifted.values();
    assert_eq!(values.len(), 4);
    assert!(values[0] > 1e-4);
    assert_eq!(*values.last().unwrap(), 3e-4);
}

#[test]
fn rate_grid_with_steps() {
    let range = RateGrid::Range {
        start: 0.0,
        stop: 5e-4,
        steps: 10,
    };
    assert_eq!(range.with_steps(4).len(), 4);
    let list = RateGrid::List(vec![1e-4, 2e-4, 3e-4]);
    // Lists have no generating rule: truncated, never extended.
    assert_eq!(list.with_steps(2), RateGrid::List(vec![1e-4, 2e-4]));
    assert_eq!(list.with_steps(9), list);
}

#[test]
fn workload_entry_round_trips_and_denies_unknown() {
    let entry = WorkloadEntry {
        label: "Lm=256".into(),
        workload: presets::wl_m32_l256(),
    };
    assert_eq!(round_trip(&entry), entry);
    let err = serde_json::from_str::<WorkloadEntry>(
        r#"{"label": "x", "workload": {"lambda_g": 0.0, "msg_flits": 1, "flit_bytes": 1.0}, "lable": 3}"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("lable"), "{err}");
}

#[test]
fn scenario_round_trips_structurally() {
    let s = scenario();
    let json = serde_json::to_string_pretty(&s).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    // Scenario has no PartialEq (SimResults chains); structural equality
    // via the serialised form is exactly what the golden files rely on.
    assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    back.validate().unwrap();
}

#[test]
fn minimal_scenario_file_takes_documented_defaults() {
    let json = r#"{
        "spec": {
            "m": 4,
            "clusters": [
                {"n": 1, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                          "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
                {"n": 1, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                          "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
                {"n": 2, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                          "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
                {"n": 2, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                          "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}}
            ],
            "icn2": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02}
        },
        "workloads": [{"label": "Lm=256", "workload": {"lambda_g": 0.0, "msg_flits": 32, "flit_bytes": 256.0}}],
        "rates": [2e-4]
    }"#;
    let s: Scenario = serde_json::from_str(json).unwrap();
    assert_eq!(s.name, "");
    assert_eq!(s.pattern, Pattern::Uniform);
    assert_eq!(s.replications, 1);
    assert_eq!(s.seeding, Seeding::Shared);
    assert_eq!(s.opts, ModelOptions::default());
    assert_eq!(s.sim, SimConfig::default());
    s.validate().unwrap();
}

#[test]
fn scenario_rejects_unknown_and_missing_fields() {
    let err = serde_json::from_str::<Scenario>(r#"{"nmae": "typo"}"#).unwrap_err();
    assert!(err.to_string().contains("nmae"), "{err}");
    // Required fields stay required despite the defaults.
    let err = serde_json::from_str::<Scenario>(r#"{"name": "no spec"}"#).unwrap_err();
    assert!(err.to_string().contains("spec"), "{err}");
}

#[test]
fn validate_catches_broken_scenarios() {
    let base = scenario();

    let mut s = base.clone();
    s.workloads.clear();
    assert!(s.validate().unwrap_err().contains("workload"));

    let mut s = base.clone();
    s.rates = RateGrid::List(vec![1e-4, -2e-4]);
    assert!(s.validate().unwrap_err().contains("finite and > 0"));

    let mut s = base.clone();
    s.rates = RateGrid::Range {
        start: 2e-4,
        stop: 1e-4,
        steps: 4,
    };
    assert!(s.validate().unwrap_err().contains("start < stop"));

    let mut s = base.clone();
    s.rates = RateGrid::List(Vec::new());
    assert!(s.validate().unwrap_err().contains("at least one rate"));

    let mut s = base.clone();
    s.replications = 0;
    assert!(s.validate().unwrap_err().contains("replications"));

    let mut s = base.clone();
    s.pattern = Pattern::ClusterLocal { locality: 1.5 };
    assert!(s.validate().unwrap_err().contains("[0, 1]"));

    let mut s = base.clone();
    s.pattern = Pattern::Hotspot {
        hotspot: 544,
        fraction: 0.2,
    };
    assert!(s.validate().unwrap_err().contains("hotspot"));

    let mut s = base.clone();
    s.pattern = Pattern::ClusterShift { shift: 16 };
    assert!(s.validate().unwrap_err().contains("shift"));

    let mut s = base.clone();
    s.workloads[0].workload.msg_flits = 0;
    assert!(s.validate().unwrap_err().contains("workload"));

    let mut s = base.clone();
    s.sim.measured = 0;
    assert!(s.validate().unwrap_err().contains("measured"));

    // Deserialization bypasses NetworkCharacteristics::new, so validate()
    // must catch physically impossible networks too.
    let mut s = base.clone();
    s.spec.clusters[0].ecn1.bandwidth = 0.0;
    assert!(s.validate().unwrap_err().contains("bandwidth"));
    let mut s = base.clone();
    s.spec.icn2.network_latency = f64::NAN;
    assert!(s.validate().unwrap_err().contains("network_latency"));

    base.validate().unwrap();
}
