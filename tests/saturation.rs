//! Saturation behaviour: the stability boundary the figures hinge on.

use cocnet::model::error::SaturationSite;
use cocnet::prelude::*;
use cocnet::presets;

fn spec() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap()
}

#[test]
fn saturation_point_is_a_tight_bracket() {
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    let sat = saturation_point(&spec(), &wl, &opts, 1e-5).unwrap();
    assert!(evaluate(&spec(), &wl.with_rate(sat), &opts).is_ok());
    assert!(evaluate(&spec(), &wl.with_rate(sat * 1.001), &opts).is_err());
}

#[test]
fn paper_systems_saturate_inside_their_figure_axes() {
    // Each figure's x-axis ends just past the analysis curve's saturation;
    // the model must saturate within (0.5, 1.2]× the axis maximum.
    let opts = ModelOptions::default();
    for (spec, wl, axis_max) in [
        (
            presets::org_1120(),
            presets::wl_m32_l256(),
            presets::rates::FIG3_MAX,
        ),
        (
            presets::org_1120(),
            presets::wl_m64_l256(),
            presets::rates::FIG4_MAX,
        ),
        (
            presets::org_544(),
            presets::wl_m32_l256(),
            presets::rates::FIG5_MAX,
        ),
        (
            presets::org_544(),
            presets::wl_m64_l256(),
            presets::rates::FIG6_MAX,
        ),
    ] {
        let sat = saturation_point(&spec, &wl, &opts, 1e-4).unwrap();
        let ratio = sat / axis_max;
        assert!(
            (0.5..=1.2).contains(&ratio),
            "N={} M={}: saturation {sat:.2e} vs axis {axis_max:.2e} (ratio {ratio:.2})",
            spec.total_nodes(),
            wl.msg_flits
        );
    }
}

#[test]
fn first_saturating_queue_is_the_concentrator() {
    // §4: "the inter-cluster networks, especially ICN2, are the bottlenecks
    // of the system". In the model the binding constraint is the
    // concentrator/dispatcher M/G/1.
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    let sat = saturation_point(&spec(), &wl, &opts, 1e-5).unwrap();
    let err = evaluate(&spec(), &wl.with_rate(sat * 1.01), &opts).unwrap_err();
    match err {
        cocnet::model::ModelError::Saturated { site, rho } => {
            assert!(
                matches!(site, SaturationSite::Concentrator(_, _)),
                "{site:?}"
            );
            assert!(rho >= 1.0);
        }
        other => panic!("expected saturation, got {other}"),
    }
}

#[test]
fn icn2_bandwidth_boost_moves_saturation_proportionally() {
    // Fig. 7's mechanism: the concentrator service is M·t_cs^{ICN2}, so a
    // bandwidth boost stretches the stability region by (almost) the same
    // factor (switch latency keeps it slightly below 20 %).
    let opts = ModelOptions::default();
    let wl = presets::wl_m128_l256();
    for base in [presets::org_544(), presets::org_1120()] {
        let boosted = presets::with_boosted_icn2(&base, 1.2);
        let s0 = saturation_point(&base, &wl, &opts, 1e-4).unwrap();
        let s1 = saturation_point(&boosted, &wl, &opts, 1e-4).unwrap();
        let gain = s1 / s0 - 1.0;
        assert!(
            (0.15..=0.21).contains(&gain),
            "N={}: gain {gain:.3}",
            base.total_nodes()
        );
    }
}

#[test]
fn flit_size_rescales_saturation_close_to_linearly() {
    let opts = ModelOptions::default();
    let s = spec();
    let sat256 =
        saturation_point(&s, &Workload::new(0.0, 32, 256.0).unwrap(), &opts, 1e-5).unwrap();
    let sat512 =
        saturation_point(&s, &Workload::new(0.0, 32, 512.0).unwrap(), &opts, 1e-5).unwrap();
    let ratio = sat256 / sat512;
    // Service = α_s + d_m β doubles the β part only; ratio ∈ (1.8, 2.0).
    assert!((1.8..=2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn sweep_stops_at_saturation_not_before() {
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    let sat = saturation_point(&spec(), &wl, &opts, 1e-4).unwrap();
    let rates: Vec<f64> = (1..=10).map(|i| sat * 1.2 * i as f64 / 10.0).collect();
    let series = sweep(&spec(), &wl, &rates, &opts, "model");
    // Points below saturation present, points above absent.
    assert!(series.len() >= 8, "series has {} points", series.len());
    assert!(series.len() < 10);
    assert!(series.points.iter().all(|p| p.x <= sat * 1.0001));
}

#[test]
fn zero_rate_evaluates_to_zero_wait_latency() {
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    let out = evaluate(&spec(), &wl, &opts).unwrap();
    for c in &out.per_cluster {
        assert_eq!(c.intra.source_wait, 0.0);
        assert_eq!(c.inter.source_wait, 0.0);
        assert_eq!(c.inter.condis_wait, 0.0);
    }
    assert!(out.latency > 0.0);
}
