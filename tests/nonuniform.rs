//! Non-uniform traffic: the paper's future-work direction, implemented as
//! an outgoing-probability generalisation of the model and validated
//! against the simulator's cluster-local pattern.

use cocnet::model::{evaluate_with_profile, OutgoingProfile};
use cocnet::prelude::*;

fn spec() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap()
}

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 1_000,
        measured: 15_000,
        drain: 1_000,
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn uniform_profile_reproduces_plain_evaluate() {
    let s = spec();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let opts = ModelOptions::default();
    let a = evaluate(&s, &wl, &opts).unwrap();
    let b = evaluate_with_profile(&s, &wl, &opts, &OutgoingProfile::uniform(&s)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn locality_reduces_predicted_latency_monotonically() {
    let s = spec();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let opts = ModelOptions::default();
    let mut last = f64::INFINITY;
    for locality in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let profile = OutgoingProfile::cluster_local(&s, locality).unwrap();
        let out = evaluate_with_profile(&s, &wl, &opts, &profile).unwrap();
        assert!(
            out.latency < last,
            "locality {locality}: {} !< {last}",
            out.latency
        );
        last = out.latency;
    }
}

#[test]
fn locality_extends_the_stability_region() {
    // Keeping traffic local bypasses the concentrators — the saturation
    // rate must grow with locality.
    let s = spec();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    let opts = ModelOptions::default();
    let sat_at = |locality: f64| {
        let profile = OutgoingProfile::cluster_local(&s, locality).unwrap();
        // Bisection on the profiled model.
        let mut lo = 0.0;
        let mut hi = 1e-6;
        while evaluate_with_profile(&s, &wl.with_rate(hi), &opts, &profile).is_ok() {
            lo = hi;
            hi *= 2.0;
            assert!(hi < 1e6, "never saturates");
        }
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if evaluate_with_profile(&s, &wl.with_rate(mid), &opts, &profile).is_ok() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let sat_uniformish = sat_at(0.2);
    let sat_local = sat_at(0.8);
    assert!(
        sat_local > 2.0 * sat_uniformish,
        "local {sat_local:.2e} vs {sat_uniformish:.2e}"
    );
}

#[test]
fn model_tracks_simulation_under_cluster_local_traffic() {
    let s = spec();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let opts = ModelOptions::default();
    for locality in [0.3, 0.7] {
        let profile = OutgoingProfile::cluster_local(&s, locality).unwrap();
        let model = evaluate_with_profile(&s, &wl, &opts, &profile).unwrap();
        let sim = run_simulation(&s, &wl, Pattern::ClusterLocal { locality }, &sim_cfg(21));
        assert!(sim.completed);
        let err = (model.latency - sim.latency.mean) / sim.latency.mean;
        // Same documented inter-cluster offset as the uniform case; at
        // higher locality the intra share grows and the error shrinks.
        assert!(
            err.abs() < 0.35,
            "locality {locality}: model {:.2} vs sim {:.2} ({:+.1}%)",
            model.latency,
            sim.latency.mean,
            err * 100.0
        );
        // The observed inter fraction must match 1 − locality closely.
        assert!((sim.inter_fraction() - (1.0 - locality)).abs() < 0.02);
    }
}

#[test]
fn hotspot_pattern_degrades_simulated_latency() {
    let s = spec();
    let wl = Workload::new(3e-4, 32, 256.0).unwrap();
    let uni = run_simulation(&s, &wl, Pattern::Uniform, &sim_cfg(22));
    let hot = run_simulation(
        &s,
        &wl,
        Pattern::Hotspot {
            hotspot: 0,
            fraction: 0.3,
        },
        &sim_cfg(22),
    );
    assert!(uni.completed);
    // 30 % of all traffic converging on one node must hurt; depending on
    // load it may stop completing at all.
    let hot_mean = hot.latency.mean;
    assert!(
        !hot.completed || hot_mean > uni.latency.mean,
        "hotspot {hot_mean} vs uniform {}",
        uni.latency.mean
    );
}

#[test]
fn bursty_arrivals_raise_latency_at_fixed_mean_rate() {
    use cocnet::sim::{run_simulation_arrivals, BuiltSystem};
    use cocnet_workloads::ArrivalSpec;
    let s = spec();
    let wl = Workload::new(3e-4, 32, 256.0).unwrap();
    let built = BuiltSystem::build(&s, wl.flit_bytes);
    let cfg = sim_cfg(31);
    let poisson = run_simulation_arrivals(
        &built,
        &wl,
        Pattern::Uniform,
        &cfg,
        ArrivalSpec::Poisson { rate: 3e-4 },
    );
    let bursty = run_simulation_arrivals(
        &built,
        &wl,
        Pattern::Uniform,
        &cfg,
        ArrivalSpec::bursty(3e-4, 0.2, 8.0),
    );
    assert!(poisson.completed && bursty.completed);
    assert!(
        bursty.latency.mean > poisson.latency.mean,
        "bursty {} vs poisson {}",
        bursty.latency.mean,
        poisson.latency.mean
    );
    // Same mean load: generated populations match exactly (fixed count),
    // and the spans should be within a factor ~2 of each other.
    assert_eq!(poisson.generated, bursty.generated);
}

#[test]
fn custom_profile_supports_asymmetric_clusters() {
    // A profile where only cluster 0 sends everything outward.
    let s = spec();
    let wl = Workload::new(1e-4, 32, 256.0).unwrap();
    let opts = ModelOptions::default();
    let profile = OutgoingProfile::custom(&s, vec![1.0, 0.1, 0.1, 0.1]).unwrap();
    let out = evaluate_with_profile(&s, &wl, &opts, &profile).unwrap();
    // Cluster 0's mean is fully inter-cluster; cluster 1's mostly intra.
    assert!(out.per_cluster[0].mean > out.per_cluster[1].mean);
    assert_eq!(out.per_cluster[0].outgoing_probability, 1.0);
}
