//! Cross-validation of the two simulation engines: the message-level worm
//! engine (fast, used for the figures) against the flit-level reference
//! engine (exact single-flit-buffer semantics).
//!
//! Both engines share traffic generation, routing and the
//! store-and-forward boundary, so any disagreement isolates the worm
//! engine's within-segment drain approximation.

use cocnet::prelude::*;
use cocnet::sim::run_simulation_flit;

fn spec(m: u32, heights: &[u32]) -> SystemSpec {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let clusters = heights
        .iter()
        .map(|&n| ClusterSpec {
            n,
            icn1: net1,
            ecn1: net2,
            topology: Default::default(),
        })
        .collect();
    SystemSpec::new(m, clusters, net1).unwrap()
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 500,
        measured: 5_000,
        drain: 500,
        seed,
        coupling: Coupling::StoreAndForward,
        ..SimConfig::default()
    }
}

#[test]
fn engines_agree_at_light_load() {
    let s = spec(4, &[1, 1, 2, 2]);
    let wl = Workload::new(5e-5, 16, 256.0).unwrap();
    let worm = run_simulation(&s, &wl, Pattern::Uniform, &cfg(1));
    let flit = run_simulation_flit(&s, &wl, Pattern::Uniform, &cfg(1));
    assert!(worm.completed && flit.completed);
    let rel = (worm.latency.mean - flit.latency.mean).abs() / flit.latency.mean;
    assert!(
        rel < 0.01,
        "worm {} vs flit {} ({:.2}%)",
        worm.latency.mean,
        flit.latency.mean,
        rel * 100.0
    );
}

#[test]
fn engines_agree_under_contention() {
    let s = spec(4, &[1, 1, 2, 2]);
    let wl = Workload::new(6e-4, 16, 256.0).unwrap();
    let worm = run_simulation(&s, &wl, Pattern::Uniform, &cfg(2));
    let flit = run_simulation_flit(&s, &wl, Pattern::Uniform, &cfg(2));
    assert!(worm.completed && flit.completed);
    let rel = (worm.latency.mean - flit.latency.mean).abs() / flit.latency.mean;
    assert!(
        rel < 0.08,
        "worm {} vs flit {} ({:.2}%)",
        worm.latency.mean,
        flit.latency.mean,
        rel * 100.0
    );
}

#[test]
fn engines_agree_on_intra_only_traffic() {
    // Pure intra traffic (single network, no boundary): the engines differ
    // only in tail modeling; per-population means must track closely.
    let s = spec(8, &[2; 8]);
    let wl = Workload::new(2e-4, 24, 256.0).unwrap();
    let pattern = Pattern::ClusterLocal { locality: 1.0 };
    let worm = run_simulation(&s, &wl, pattern, &cfg(3));
    let flit = run_simulation_flit(&s, &wl, pattern, &cfg(3));
    assert!(worm.completed && flit.completed);
    assert_eq!(worm.inter.count, 0);
    assert_eq!(flit.inter.count, 0);
    let rel = (worm.latency.mean - flit.latency.mean).abs() / flit.latency.mean;
    assert!(rel < 0.02, "{:.3}%", rel * 100.0);
}

#[test]
fn flit_engine_utilisation_accounting_is_consistent() {
    // Busy fractions must lie in [0, 1] and the hottest channel under load
    // must be visibly utilised in both engines.
    let s = spec(4, &[1, 1, 2, 2]);
    let wl = Workload::new(3e-3, 32, 256.0).unwrap();
    for r in [
        run_simulation(&s, &wl, Pattern::Uniform, &cfg(4)),
        run_simulation_flit(&s, &wl, Pattern::Uniform, &cfg(4)),
    ] {
        assert!(r.completed);
        let max_util = r
            .channel_busy
            .iter()
            .map(|b| b / r.sim_time)
            .fold(0.0f64, f64::max);
        assert!(max_util > 0.05, "max util {max_util}");
        assert!(max_util <= 1.0 + 1e-9, "max util {max_util}");
    }
}

#[test]
fn engines_rank_coupling_free_loads_identically() {
    // Across three load levels the two engines must produce the same
    // ordering (a cheap distribution-free sanity check).
    let s = spec(4, &[1, 1, 2, 2]);
    let mut worm_means = Vec::new();
    let mut flit_means = Vec::new();
    for (i, rate) in [2e-4, 1.5e-3, 4e-3].into_iter().enumerate() {
        let wl = Workload::new(rate, 32, 256.0).unwrap();
        worm_means.push(
            run_simulation(&s, &wl, Pattern::Uniform, &cfg(10 + i as u64))
                .latency
                .mean,
        );
        flit_means.push(
            run_simulation_flit(&s, &wl, Pattern::Uniform, &cfg(10 + i as u64))
                .latency
                .mean,
        );
    }
    assert!(worm_means.windows(2).all(|w| w[1] > w[0]));
    assert!(flit_means.windows(2).all(|w| w[1] > w[0]));
}
