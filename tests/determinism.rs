//! Reproducibility guarantees: model evaluation is pure; simulation is
//! bit-identical for identical seeds and differs across seeds; statistics
//! accumulators are order-deterministic.

use cocnet::prelude::*;

fn spec() -> SystemSpec {
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    SystemSpec::new(4, vec![c(1), c(2), c(2), c(3)], net1).unwrap()
}

#[test]
fn model_evaluation_is_pure() {
    let wl = Workload::new(3e-4, 64, 256.0).unwrap();
    let opts = ModelOptions::default();
    let a = evaluate(&spec(), &wl, &opts).unwrap();
    let b = evaluate(&spec(), &wl, &opts).unwrap();
    assert_eq!(a, b);
}

#[test]
fn simulation_bit_identical_for_same_seed() {
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let cfg = SimConfig {
        warmup: 500,
        measured: 5_000,
        drain: 500,
        seed: 99,
        ..SimConfig::default()
    };
    let a = run_simulation(&spec(), &wl, Pattern::Uniform, &cfg);
    let b = run_simulation(&spec(), &wl, Pattern::Uniform, &cfg);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.intra, b.intra);
    assert_eq!(a.inter, b.inter);
    assert_eq!(a.sim_time, b.sim_time);
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.channel_busy, b.channel_busy);
}

#[test]
fn simulation_differs_across_seeds_but_agrees_statistically() {
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let mk = |seed| {
        let cfg = SimConfig {
            warmup: 1_000,
            measured: 10_000,
            drain: 1_000,
            seed,
            ..SimConfig::default()
        };
        run_simulation(&spec(), &wl, Pattern::Uniform, &cfg)
    };
    let a = mk(1);
    let b = mk(2);
    assert_ne!(a.latency.mean, b.latency.mean);
    // Two independent replications of the same system must agree within
    // combined confidence bounds (wide tolerance: 10 %).
    let rel = (a.latency.mean - b.latency.mean).abs() / a.latency.mean;
    assert!(rel < 0.10, "replications diverge: {rel:.3}");
}

#[test]
fn coupling_modes_are_ordered_at_light_load() {
    // CutThrough ≤ VirtualCutThrough ≤ StoreAndForward in zero-load-ish
    // latency (each adds buffering delay).
    let wl = Workload::new(5e-5, 32, 256.0).unwrap();
    let mk = |coupling| {
        let cfg = SimConfig {
            warmup: 500,
            measured: 5_000,
            drain: 500,
            seed: 5,
            coupling,
            ..SimConfig::default()
        };
        run_simulation(&spec(), &wl, Pattern::Uniform, &cfg)
            .latency
            .mean
    };
    let ct = mk(Coupling::CutThrough);
    let vct = mk(Coupling::VirtualCutThrough);
    let saf = mk(Coupling::StoreAndForward);
    assert!(ct <= vct + 1e-9, "cut-through {ct} vs vct {vct}");
    assert!(vct <= saf + 1e-9, "vct {vct} vs store-and-forward {saf}");
}

#[test]
fn parallel_sweep_equals_sequential() {
    // The rayon-parallel figure harness must produce exactly the results of
    // sequential runs (each point is an independent seeded simulation).
    let cfg = figure_config(Figure::Fig5);
    let sim_cfg = SimConfig {
        warmup: 200,
        measured: 2_000,
        drain: 200,
        seed: 3,
        ..SimConfig::default()
    };
    let par = run_figure_sim(&cfg, &sim_cfg, 3);
    // Sequential reference for the first workload.
    let (_, wl) = &cfg.workloads[0];
    for p in &par[0].points {
        let r = run_simulation(&cfg.spec, &wl.with_rate(p.x), Pattern::Uniform, &sim_cfg);
        assert_eq!(r.latency.mean, p.y, "rate {}", p.x);
    }
}
