//! Cross-crate checks of the intra-run sharded engine on the paper's
//! organizations: full-struct bit-identity against the serial oracle,
//! index-stable aggregation merges, and a multicore wall-clock speedup
//! gate (skipped on small hosts, like the sweep-level gate in
//! `scenario_smoke`).

use cocnet::prelude::*;
use cocnet::presets;
use cocnet::sim::{run_simulation, ShardMode, SimResults};

fn base_cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 500,
        measured: 5_000,
        drain: 500,
        seed,
        ..SimConfig::default()
    }
}

/// Full-struct equality with the one documented exception: the slab
/// high-water mark is a per-shard maximum, not a global one.
fn assert_identical_modulo_peak(serial: &SimResults, sharded: &SimResults, label: &str) {
    let mut normalized = sharded.clone();
    normalized.peak_live_msgs = serial.peak_live_msgs;
    assert_eq!(
        serial, &normalized,
        "{label}: sharded run drifted from serial"
    );
}

#[test]
fn paper_organization_sharded_bit_identical() {
    // Table 1's N=544 / C=16 organization: every cluster becomes a shard
    // plus the ICN2 hub, and the merged statistics must be f64-bit-equal
    // to the serial engine, structure field by structure field.
    let spec = presets::org_544();
    let wl = presets::wl_m32_l256().with_rate(1e-4);
    let serial = run_simulation(&spec, &wl, Pattern::Uniform, &base_cfg(2024));
    assert!(serial.completed);
    for shards in [ShardMode::Auto, ShardMode::N(4)] {
        let sharded = run_simulation(
            &spec,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards,
                ..base_cfg(2024)
            },
        );
        assert_identical_modulo_peak(&serial, &sharded, &format!("org_544/{shards:?}"));
    }
}

#[test]
fn aggregation_fields_merge_index_stably() {
    // The per-cluster summaries are indexed by source cluster; the
    // sharded merge must keep that indexing regardless of which shard
    // recorded each delivery. Channel busy-time ownership is likewise
    // positional: every channel's accumulator comes from the one shard
    // that owns it.
    let spec = presets::org_544();
    let wl = presets::wl_m32_l256().with_rate(1e-4);
    let serial = run_simulation(&spec, &wl, Pattern::Uniform, &base_cfg(7));
    let sharded = run_simulation(
        &spec,
        &wl,
        Pattern::Uniform,
        &SimConfig {
            shards: ShardMode::Auto,
            ..base_cfg(7)
        },
    );
    assert_eq!(serial.per_cluster.len(), spec.num_clusters());
    assert_eq!(sharded.per_cluster.len(), spec.num_clusters());
    let recorded: u64 = sharded.per_cluster.iter().map(|s| s.count).sum();
    assert_eq!(recorded, sharded.delivered_recorded);
    for (ci, (a, b)) in serial
        .per_cluster
        .iter()
        .zip(&sharded.per_cluster)
        .enumerate()
    {
        assert_eq!(a.count, b.count, "cluster {ci} count");
        assert_eq!(
            a.mean.to_bits(),
            b.mean.to_bits(),
            "cluster {ci} mean drifted"
        );
    }
    assert_eq!(serial.channel_busy.len(), sharded.channel_busy.len());
    for (c, (a, b)) in serial
        .channel_busy
        .iter()
        .zip(&sharded.channel_busy)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "channel {c} busy time drifted");
    }
    // The slab peak is the max over shards: bounded by the serial peak
    // (each shard sees a subset of the live population) plus the transit
    // copies that exist on both sides of a boundary crossing.
    assert!(sharded.peak_live_msgs >= 1);
    assert!(sharded.peak_live_msgs <= 2 * serial.peak_live_msgs);
}

#[test]
fn sharded_run_faster_on_multicore() {
    // Wall-clock gate for the actual point of the exercise. Sharding
    // pays barrier synchronisation per lookahead window, so the gate
    // runs a long, busy measurement where the per-window work dominates.
    // Skipped below four workers — the repo's CI floor for perf claims.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads < 4 {
        eprintln!("skipping sharded speedup assertion: only {threads} worker thread(s)");
        return;
    }
    let spec = presets::org_544();
    let wl = presets::wl_m32_l256().with_rate(3e-4);
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 40_000,
        drain: 2_000,
        seed: 99,
        ..SimConfig::default()
    };
    let t0 = std::time::Instant::now();
    let serial = run_simulation(&spec, &wl, Pattern::Uniform, &cfg);
    let serial_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let sharded = run_simulation(
        &spec,
        &wl,
        Pattern::Uniform,
        &SimConfig {
            shards: ShardMode::Auto,
            ..cfg
        },
    );
    let sharded_time = t1.elapsed();
    assert_identical_modulo_peak(&serial, &sharded, "speedup-gate");
    let speedup = serial_time.as_secs_f64() / sharded_time.as_secs_f64();
    assert!(
        speedup > 1.5,
        "expected >1.5x sharded speedup on {threads} cores, got {speedup:.2}x \
         (serial {serial_time:.2?}, sharded {sharded_time:.2?})"
    );
}

#[test]
fn fig5_scale_runs_hit_real_ties_and_stay_bit_identical() {
    // At fig5 population sizes, same-instant cross-shard delivery ties
    // are real: one multi-channel release unblocks two messages on
    // different shards, and the symmetric topology finishes both
    // remaining paths in bit-equal time. The serial engine's natural
    // tie order (global schedule sequence) is unobservable from inside
    // a shard, so both engines defer their sink pushes and replay them
    // in the canonical (pop time, src, gen_time) order — this test runs
    // at the scale where that order actually gets exercised, one
    // lightly-loaded point and one contended point.
    use cocnet::sim::run_simulation_built;
    use cocnet::sim::BuiltSystem;
    let spec = presets::org_544();
    let cfg = SimConfig {
        warmup: 2_000,
        measured: 20_000,
        drain: 2_000,
        seed: 2006,
        max_events: 500_000_000,
        ..SimConfig::default()
    };
    let wl = Workload::new(0.0, 32, 256.0).unwrap().with_rate(0.0);
    let built = BuiltSystem::build(&spec, wl.flit_bytes);
    for rate in [1e-4, 6e-4] {
        let wl = wl.with_rate(rate);
        let serial = run_simulation_built(&built, &wl, Pattern::Uniform, &cfg);
        let sharded = run_simulation_built(
            &built,
            &wl,
            Pattern::Uniform,
            &SimConfig {
                shards: ShardMode::Auto,
                ..cfg.clone()
            },
        );
        assert_identical_modulo_peak(&serial, &sharded, &format!("fig5-scale rate {rate:e}"));
    }
}
