//! Smoke tests for the unified `Scenario` runner: every figure/table path
//! of the paper goes through it in quick mode, producing non-empty series
//! that rise under load; the parallel path is bit-identical to the serial
//! reference; and on multicore hosts the parallel sweep is measurably
//! faster.

use cocnet::experiments::{figure_config, figure_scenario, run_fig7, Figure};
use cocnet::model::ModelOptions;
use cocnet::prelude::*;
use cocnet::presets;

const ALL_FIGURES: [Figure; 4] = [Figure::Fig3, Figure::Fig4, Figure::Fig5, Figure::Fig6];

/// A simulation config small enough for a test, quick-mode-shaped
/// (warmup/measured/drain ratios of the `--quick` flag).
fn tiny_sim() -> SimConfig {
    SimConfig {
        warmup: 200,
        measured: 2_000,
        drain: 200,
        seed: 2006,
        ..SimConfig::default()
    }
}

#[test]
fn every_figure_model_path_through_scenario() {
    for fig in ALL_FIGURES {
        let cfg = figure_config(fig);
        let scenario = figure_scenario(&cfg, &tiny_sim(), 4);
        let series = scenario.run_model();
        assert_eq!(series.len(), 2, "{fig:?}: two flit sizes");
        for s in &series {
            assert!(!s.is_empty(), "{fig:?}: {} is empty", s.label);
            assert!(
                s.is_monotone_non_decreasing(),
                "{fig:?}: {} not monotone under load",
                s.label
            );
        }
    }
}

#[test]
fn every_figure_sim_path_through_scenario() {
    for fig in ALL_FIGURES {
        let cfg = figure_config(fig);
        let series = figure_scenario(&cfg, &tiny_sim(), 3).run_sim();
        assert_eq!(series.len(), 2, "{fig:?}: two flit sizes");
        for s in &series {
            assert!(!s.is_empty(), "{fig:?}: {} is empty", s.label);
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            assert!(
                last.y >= first.y - 1e-9,
                "{fig:?}: {} latency fell under load ({} -> {})",
                s.label,
                first.y,
                last.y
            );
        }
    }
}

#[test]
fn fig7_design_space_series() {
    let series = run_fig7(&ModelOptions::default(), 6);
    assert_eq!(series.len(), 4);
    for s in &series {
        assert!(!s.is_empty(), "{} is empty", s.label);
        assert!(s.is_monotone_non_decreasing(), "{} not monotone", s.label);
    }
}

#[test]
fn table_paths_still_hold() {
    // Table 1: the two organizations' node algebra.
    for (spec, n) in [(presets::org_1120(), 1120), (presets::org_544(), 544)] {
        let sum: usize = (0..spec.num_clusters())
            .map(|i| spec.cluster_nodes(i))
            .sum();
        assert_eq!(sum, n);
        assert_eq!(spec.total_nodes(), n);
    }
    // Table 2: derived per-flit service times are positive and scale with
    // flit size.
    for net in [presets::net1(), presets::net2()] {
        for d_m in [256.0, 512.0] {
            assert!(net.t_cn(d_m) > 0.0);
            assert!(net.t_cs(d_m) > 0.0);
        }
        assert!(net.t_cn(512.0) > net.t_cn(256.0));
    }
}

#[test]
fn calendar_scheduler_sweep_bit_identical_to_heap() {
    // The whole scenario path — parallel sweep included — must be
    // backend-invariant: a fig5 sweep under the calendar queue produces
    // the exact series the heap does, point for point.
    let cfg = figure_config(Figure::Fig5);
    let heap = figure_scenario(&cfg, &tiny_sim(), 3);
    let mut calendar = heap.clone();
    calendar.sim.scheduler = cocnet::sim::SchedulerKind::Calendar;
    assert_eq!(heap.run_sim(), calendar.run_sim());
    // And the serial reference agrees too, closing the square.
    assert_eq!(calendar.run_sim(), calendar.run_sim_serial());
}

#[test]
fn parallel_sweep_bit_identical_to_serial_reference() {
    let cfg = figure_config(Figure::Fig5);
    let scenario = figure_scenario(&cfg, &tiny_sim(), 3).with_replications(2);
    let par = scenario.run_sim();
    let ser = scenario.run_sim_serial();
    assert_eq!(par, ser);

    // And with per-point seeding, which new studies should prefer.
    let scenario = scenario.with_seeding(Seeding::PerPoint);
    assert_eq!(scenario.run_sim(), scenario.run_sim_serial());
}

#[test]
fn replicate_parallel_matches_replicate() {
    let spec = presets::org_544();
    let wl = presets::wl_m32_l256().with_rate(2e-4);
    let serial = cocnet::sim::replicate(&spec, &wl, Pattern::Uniform, &tiny_sim(), 3);
    let parallel = cocnet::sim::replicate_parallel(&spec, &wl, Pattern::Uniform, &tiny_sim(), 3);
    assert_eq!(serial.replication_means, parallel.replication_means);
    assert_eq!(serial.mean, parallel.mean);
}

#[test]
fn parallel_sweep_faster_on_multicore() {
    // The rayon shim sizes its pool from RAYON_NUM_THREADS when set, so
    // honour that override here too — otherwise the parallel path would run
    // serial while this gate sees a multicore host.
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    if threads < 4 {
        eprintln!("skipping speedup assertion: only {threads} worker thread(s) available");
        return;
    }
    // A sweep with plenty of independent jobs relative to the core count.
    let cfg = figure_config(Figure::Fig5);
    let scenario = figure_scenario(&cfg, &tiny_sim(), 8);
    let t0 = std::time::Instant::now();
    let ser = scenario.run_sim_serial();
    let serial_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let par = scenario.run_sim();
    let parallel_time = t1.elapsed();
    assert_eq!(par, ser);
    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    assert!(
        speedup > 1.5,
        "expected >1.5x speedup on {threads} cores, got {speedup:.2}x \
         (serial {serial_time:.2?}, parallel {parallel_time:.2?})"
    );
}
