//! End-to-end validation: the analytical model against the discrete-event
//! simulator, the heart of the paper's §4.
//!
//! Tolerances reflect what the reproduction actually achieves (see
//! EXPERIMENTS.md): intra-cluster latency matches to well under 5 %;
//! inter-cluster latency carries a documented rate-conversion offset, so
//! the whole-system comparison is held to a looser bound; the qualitative
//! shape (monotonicity, saturation ordering) must match exactly.

use cocnet::prelude::*;

fn netchar(bw: f64, a_n: f64, a_s: f64) -> NetworkCharacteristics {
    NetworkCharacteristics::new(bw, a_n, a_s).unwrap()
}

/// A heterogeneous 4-cluster system small enough for fast simulation.
fn small_spec() -> SystemSpec {
    let net1 = netchar(500.0, 0.01, 0.02);
    let net2 = netchar(250.0, 0.05, 0.01);
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    SystemSpec::new(4, vec![c(2), c(2), c(3), c(3)], net1).unwrap()
}

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 1_000,
        measured: 15_000,
        drain: 1_000,
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn intra_cluster_latency_matches_within_5_percent() {
    let spec = small_spec();
    let opts = ModelOptions::default();
    for rate in [1e-4, 5e-4] {
        let wl = Workload::new(rate, 32, 256.0).unwrap();
        let out = evaluate(&spec, &wl, &opts).unwrap();
        let sim = run_simulation(&spec, &wl, Pattern::Uniform, &sim_cfg(3));
        assert!(sim.completed);
        // Population-weighted model intra mean.
        let n = spec.total_nodes() as f64;
        let mut w = 0.0;
        let mut m_in = 0.0;
        for c in &out.per_cluster {
            let share = spec.cluster_nodes(c.cluster) as f64 / n;
            w += share * (1.0 - c.outgoing_probability);
            m_in += share * (1.0 - c.outgoing_probability) * c.intra.total();
        }
        m_in /= w;
        let err = (m_in - sim.intra.mean) / sim.intra.mean;
        assert!(
            err.abs() < 0.05,
            "rate {rate}: model intra {m_in:.2} vs sim {:.2} ({:+.1}%)",
            sim.intra.mean,
            err * 100.0
        );
    }
}

#[test]
fn system_latency_matches_within_documented_bound() {
    let spec = small_spec();
    let opts = ModelOptions::default();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let model = evaluate(&spec, &wl, &opts).unwrap().latency;
    let sim = run_simulation(&spec, &wl, Pattern::Uniform, &sim_cfg(4));
    assert!(sim.completed);
    let err = (model - sim.latency.mean) / sim.latency.mean;
    // The model is optimistic on inter-cluster paths by the rate-conversion
    // delay; the documented bound is 35 %.
    assert!(
        err.abs() < 0.35,
        "model {model:.2} vs sim {:.2} ({:+.1}%)",
        sim.latency.mean,
        err * 100.0
    );
    // And the model must be the *optimistic* side (it ignores the
    // concentrator's rate-conversion serialization).
    assert!(model < sim.latency.mean);
}

#[test]
fn both_rank_message_lengths_identically() {
    let spec = small_spec();
    let opts = ModelOptions::default();
    let mut model_lat = Vec::new();
    let mut sim_lat = Vec::new();
    for (m_flits, flit_bytes) in [(32, 256.0), (32, 512.0), (64, 256.0)] {
        let wl = Workload::new(1e-4, m_flits, flit_bytes).unwrap();
        model_lat.push(evaluate(&spec, &wl, &opts).unwrap().latency);
        let sim = run_simulation(&spec, &wl, Pattern::Uniform, &sim_cfg(5));
        assert!(sim.completed);
        sim_lat.push(sim.latency.mean);
    }
    // Heavier messages cost more in both worlds, in the same order.
    let rank = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        idx
    };
    assert_eq!(rank(&model_lat), rank(&sim_lat));
    assert!(model_lat[1] > model_lat[0]);
    assert!(sim_lat[1] > sim_lat[0]);
}

#[test]
fn simulation_saturates_no_later_than_twice_model_prediction() {
    // The paper's figures show simulation bending up slightly before the
    // analysis. Check the ordering: at the model's saturation rate the sim
    // is already exploding, and at a third of it the sim is still calm.
    let spec = small_spec();
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    let sat = saturation_point(&spec, &wl, &opts, 1e-3).unwrap();

    let calm = run_simulation(
        &spec,
        &wl.with_rate(sat / 3.0),
        Pattern::Uniform,
        &sim_cfg(6),
    );
    let wild = run_simulation(&spec, &wl.with_rate(sat), Pattern::Uniform, &sim_cfg(6));
    assert!(calm.completed);
    assert!(
        wild.latency.mean > 3.0 * calm.latency.mean,
        "at the model's saturation point ({sat:.2e}) the sim should be exploding: {} vs {}",
        wild.latency.mean,
        calm.latency.mean
    );
}

#[test]
fn model_tracks_simulation_trend_across_load() {
    let spec = small_spec();
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();
    let rates = [5e-5, 2e-4, 6e-4];
    let mut prev_model = 0.0;
    let mut prev_sim = 0.0;
    for (i, &rate) in rates.iter().enumerate() {
        let model = evaluate(&spec, &wl.with_rate(rate), &opts).unwrap().latency;
        let sim = run_simulation(&spec, &wl.with_rate(rate), Pattern::Uniform, &sim_cfg(7));
        assert!(sim.completed);
        if i > 0 {
            assert!(model > prev_model);
            assert!(sim.latency.mean > prev_sim);
        }
        prev_model = model;
        prev_sim = sim.latency.mean;
    }
}

#[test]
fn generation_throughput_matches_offered_load() {
    // Open-loop sanity: the simulator must generate at N·λ_g overall.
    let spec = small_spec();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let sim = run_simulation(&spec, &wl, Pattern::Uniform, &sim_cfg(40));
    assert!(sim.completed);
    let offered = spec.total_nodes() as f64 * wl.lambda_g;
    let observed = sim.generated as f64 / sim.sim_time;
    let rel = (observed - offered).abs() / offered;
    assert!(
        rel < 0.05,
        "observed rate {observed:.3e} vs offered {offered:.3e}"
    );
}

#[test]
fn littles_law_holds_approximately() {
    // L̄·throughput ≈ mean messages in flight; with a stationary window the
    // product λ_total·L̄ must be consistent between model and simulation
    // up to the documented latency offset.
    let spec = small_spec();
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();
    let sim = run_simulation(&spec, &wl, Pattern::Uniform, &sim_cfg(41));
    assert!(sim.completed);
    let lambda_total = spec.total_nodes() as f64 * wl.lambda_g;
    let in_flight_sim = lambda_total * sim.latency.mean;
    // The system is far from saturation here: a handful of messages in
    // flight, strictly positive and far below the population bound.
    assert!(in_flight_sim > 0.1, "{in_flight_sim}");
    assert!(in_flight_sim < 50.0, "{in_flight_sim}");
    let model = evaluate(&spec, &wl, &ModelOptions::default()).unwrap();
    let in_flight_model = lambda_total * model.latency;
    assert!(
        in_flight_model < in_flight_sim,
        "model is the optimistic side"
    );
    assert!(in_flight_model > 0.5 * in_flight_sim);
}

#[test]
fn non_uniform_traffic_shifts_latency_as_expected() {
    // Locality keeps messages on the fast intra network: the simulator must
    // show lower latency than uniform, and the generalised outgoing
    // probability must predict the observed inter fraction.
    let spec = small_spec();
    let wl = Workload::new(1e-4, 32, 256.0).unwrap();
    let uni = run_simulation(&spec, &wl, Pattern::Uniform, &sim_cfg(8));
    let local = run_simulation(
        &spec,
        &wl,
        Pattern::ClusterLocal { locality: 0.8 },
        &sim_cfg(8),
    );
    assert!(local.latency.mean < uni.latency.mean);
    assert!((local.inter_fraction() - 0.2).abs() < 0.02);
}
