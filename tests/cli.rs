//! End-to-end tests of the `cocnet` command-line binary (spawned via the
//! `CARGO_BIN_EXE_cocnet` path cargo provides to integration tests).

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_cocnet"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn model_subcommand_prints_breakdown() {
    let (stdout, _, ok) = run(&["model", "--org", "544", "--rate", "2e-4"]);
    assert!(ok);
    assert!(stdout.contains("C=16 N=544"));
    assert!(stdout.contains("mean message latency"));
    assert!(stdout.contains("L_out"));
    // All 16 clusters listed.
    assert!(stdout.matches('\n').count() >= 16 + 4);
}

#[test]
fn model_subcommand_custom_spec() {
    let (stdout, _, ok) = run(&[
        "model",
        "--m",
        "4",
        "--heights",
        "2,2,3,3",
        "--rate",
        "1e-4",
    ]);
    assert!(ok);
    assert!(stdout.contains("C=4 N=48"));
}

#[test]
fn saturate_subcommand() {
    let (stdout, _, ok) = run(&["saturate", "--org", "544"]);
    assert!(ok);
    assert!(stdout.contains("saturation rate"));
    // The figure-axis check: the N=544 / M=32 boundary sits near 1e-3.
    let value: f64 = stdout
        .split(':')
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!((5e-4..2e-3).contains(&value), "saturation {value}");
}

#[test]
fn sweep_subcommand_renders_plot() {
    let (stdout, _, ok) = run(&[
        "sweep",
        "--m",
        "4",
        "--heights",
        "2,2,2,2",
        "--max-rate",
        "1e-3",
        "--points",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("o Analysis"));
}

#[test]
fn sim_subcommand_runs_small() {
    let (stdout, _, ok) = run(&[
        "sim",
        "--m",
        "4",
        "--heights",
        "1,1,2,2",
        "--rate",
        "2e-4",
        "--measured",
        "2000",
        "--seed",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("completed=true"));
    assert!(stdout.contains("latency: n=2000"));
}

#[test]
fn saturated_model_reports_error_exit() {
    let (_, stderr, ok) = run(&["model", "--org", "544", "--rate", "1.0"]);
    assert!(!ok);
    assert!(stderr.contains("saturated"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn figure_subcommand_prints_analysis_series() {
    let (stdout, _, ok) = run(&["figure", "--fig", "fig5", "--points", "6"]);
    assert!(ok);
    assert!(stdout.contains("N=544, m=4, M=32"));
    assert!(stdout.contains("Analysis (Lm=256)"));
    assert!(stdout.contains("Analysis (Lm=512)"));
    let (_, stderr, ok) = run(&["figure", "--fig", "fig9"]);
    assert!(!ok);
    assert!(stderr.contains("fig3|fig4|fig5|fig6"));
}

#[test]
fn locality_flag_lowers_latency() {
    let get = |extra: &[&str]| {
        let mut args = vec!["model", "--org", "544", "--rate", "4e-4"];
        args.extend_from_slice(extra);
        let (stdout, _, ok) = run(&args);
        assert!(ok);
        stdout
            .lines()
            .find(|l| l.contains("mean message latency"))
            .unwrap()
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .parse::<f64>()
            .unwrap()
    };
    let uniform = get(&[]);
    let local = get(&["--locality", "0.8"]);
    assert!(local < uniform, "local {local} vs uniform {uniform}");
}
