//! End-to-end tests of the `cocnet` command-line binary (spawned via the
//! `CARGO_BIN_EXE_cocnet` path cargo provides to integration tests).

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_cocnet"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn model_subcommand_prints_breakdown() {
    let (stdout, _, ok) = run(&["model", "--org", "544", "--rate", "2e-4"]);
    assert!(ok);
    assert!(stdout.contains("C=16 N=544"));
    assert!(stdout.contains("mean message latency"));
    assert!(stdout.contains("L_out"));
    // All 16 clusters listed.
    assert!(stdout.matches('\n').count() >= 16 + 4);
}

#[test]
fn model_subcommand_custom_spec() {
    let (stdout, _, ok) = run(&[
        "model",
        "--m",
        "4",
        "--heights",
        "2,2,3,3",
        "--rate",
        "1e-4",
    ]);
    assert!(ok);
    assert!(stdout.contains("C=4 N=48"));
}

#[test]
fn saturate_subcommand() {
    let (stdout, _, ok) = run(&["saturate", "--org", "544"]);
    assert!(ok);
    assert!(stdout.contains("saturation rate"));
    // The figure-axis check: the N=544 / M=32 boundary sits near 1e-3.
    let value: f64 = stdout
        .split(':')
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!((5e-4..2e-3).contains(&value), "saturation {value}");
}

#[test]
fn sweep_subcommand_renders_plot() {
    let (stdout, _, ok) = run(&[
        "sweep",
        "--m",
        "4",
        "--heights",
        "2,2,2,2",
        "--max-rate",
        "1e-3",
        "--points",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("o Analysis"));
}

#[test]
fn sim_subcommand_runs_small() {
    let (stdout, _, ok) = run(&[
        "sim",
        "--m",
        "4",
        "--heights",
        "1,1,2,2",
        "--rate",
        "2e-4",
        "--measured",
        "2000",
        "--seed",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("completed=true"));
    assert!(stdout.contains("latency: n=2000"));
}

#[test]
fn saturated_model_reports_error_exit() {
    let (_, stderr, ok) = run(&["model", "--org", "544", "--rate", "1.0"]);
    assert!(!ok);
    assert!(stderr.contains("saturated"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn figure_subcommand_prints_analysis_series() {
    let (stdout, _, ok) = run(&["figure", "--fig", "fig5", "--points", "6"]);
    assert!(ok);
    assert!(stdout.contains("N=544, m=4, M=32"));
    assert!(stdout.contains("Analysis (Lm=256)"));
    assert!(stdout.contains("Analysis (Lm=512)"));
    let (_, stderr, ok) = run(&["figure", "--fig", "fig9"]);
    assert!(!ok);
    assert!(stderr.contains("fig3|fig4|fig5|fig6"));
}

#[test]
fn list_subcommand_shows_registry() {
    let (stdout, _, ok) = run(&["list"]);
    assert!(ok);
    for name in [
        "fig3",
        "table1",
        "validation",
        "bench_snapshot",
        "nonuniform",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
    assert!(stdout.contains("scenario"));
    assert!(stdout.contains("custom"));
}

#[test]
fn describe_subcommand_prints_scenario_json() {
    let (stdout, _, ok) = run(&["describe", "fig5"]);
    assert!(ok);
    assert!(stdout.contains("paper:    Fig. 5"));
    assert!(stdout.contains("scenarios/fig5.json"));
    assert!(stdout.contains("\"workloads\""));
    // --json prints the bare scenario (parseable).
    let (json, _, ok) = run(&["describe", "fig5", "--json"]);
    assert!(ok);
    assert!(json.trim_start().starts_with('{'));
    assert!(json.contains("\"rates\""));
    // Custom entries have no JSON form.
    let (_, stderr, ok) = run(&["describe", "table1", "--json"]);
    assert!(!ok);
    assert!(stderr.contains("custom"));
    let (_, stderr, ok) = run(&["describe", "no_such_thing"]);
    assert!(!ok);
    assert!(stderr.contains("unknown registry entry"));
}

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn validate_subcommand_accepts_committed_dir_and_rejects_typos() {
    let dir = scenarios_dir();
    let (stdout, _, ok) = run(&["validate", dir.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("ok    "));
    assert!(!stdout.contains("FAIL"));

    // A file with a typo'd field fails loudly, naming the field.
    let bad = std::env::temp_dir().join("cocnet_cli_bad_scenario.json");
    let mut text =
        std::fs::read_to_string(dir.join("fig5.json")).expect("committed fig5.json exists");
    text = text.replacen("\"replications\"", "\"replicatoins\"", 1);
    std::fs::write(&bad, text).unwrap();
    let (stdout, stderr, ok) = run(&["validate", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stdout.contains("replicatoins"), "{stdout} {stderr}");
    std::fs::remove_file(&bad).unwrap();
}

#[test]
fn run_subcommand_executes_a_brand_new_scenario_file() {
    // A scenario that exists nowhere in the registry: custom 48-node
    // system, one workload, explicit rates, test-sized population —
    // end-to-end through the CLI with no Rust changes.
    let net = |bw: f64, nl: f64, sl: f64| {
        format!(r#"{{"bandwidth": {bw}, "network_latency": {nl}, "switch_latency": {sl}}}"#)
    };
    let cluster = |n: u32| {
        format!(
            r#"{{"n": {n}, "icn1": {}, "ecn1": {}}}"#,
            net(500.0, 0.01, 0.02),
            net(250.0, 0.05, 0.01)
        )
    };
    let json = format!(
        r#"{{
            "name": "brand-new e2e scenario",
            "spec": {{"m": 4, "clusters": [{}, {}, {}, {}], "icn2": {}}},
            "workloads": [
                {{"label": "Lm=256", "workload": {{"lambda_g": 0.0, "msg_flits": 16, "flit_bytes": 256.0}}}}
            ],
            "rates": [2e-4, 4e-4],
            "sim": {{"warmup": 200, "measured": 2000, "drain": 200, "seed": 11}}
        }}"#,
        cluster(1),
        cluster(1),
        cluster(2),
        cluster(2),
        net(500.0, 0.01, 0.02)
    );
    let path = std::env::temp_dir().join("cocnet_cli_new_scenario.json");
    std::fs::write(&path, &json).unwrap();

    let (stdout, stderr, ok) = run(&["run", path.to_str().unwrap()]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("## brand-new e2e scenario"));
    assert!(stdout.contains("Analysis (Lm=256)"));
    assert!(stdout.contains("Simulation (Lm=256)"));

    // The same file through the unified machine writer.
    let (csv, _, ok) = run(&["run", path.to_str().unwrap(), "--out", "csv"]);
    assert!(ok);
    let header = csv.lines().next().unwrap();
    assert_eq!(header, "rate,Analysis (Lm=256),Simulation (Lm=256)");
    assert!(csv.lines().count() >= 3);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn run_subcommand_rejects_unknowns() {
    let (_, stderr, ok) = run(&["run", "not_an_entry_or_file"]);
    assert!(!ok);
    assert!(stderr.contains("neither a registry entry nor a scenario file"));
    let (_, stderr, ok) = run(&["run", "fig5", "--quikc"]);
    assert!(!ok);
    assert!(stderr.contains("--quikc"));
    // Machine output on a custom entry would hand a parser a human table
    // with exit 0 — rejected loudly instead.
    let (_, stderr, ok) = run(&["run", "table1", "--out", "json"]);
    assert!(!ok);
    assert!(stderr.contains("custom entry"), "{stderr}");
    // Zero-point overrides are rejected at parse time for every grid kind.
    let (_, stderr, ok) = run(&["run", "fig5", "--points", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--points"), "{stderr}");
}

#[test]
fn run_subcommand_refuses_to_regrid_explicit_rate_lists() {
    // --points on a range grid re-grids; on an explicit list it must fail
    // loudly rather than silently truncate the sweep.
    let dir = scenarios_dir();
    let mut text = std::fs::read_to_string(dir.join("fig5.json")).unwrap();
    text = text.replace(
        r#""rates": {
    "start": 0.0,
    "stop": 0.001,
    "steps": 10
  }"#,
        r#""rates": [1e-4, 2e-4, 3e-4]"#,
    );
    assert!(text.contains("[1e-4, 2e-4, 3e-4]"), "fixture edit failed");
    let path = std::env::temp_dir().join("cocnet_cli_list_rates.json");
    std::fs::write(&path, text).unwrap();
    let (_, stderr, ok) = run(&["run", path.to_str().unwrap(), "--points", "7", "--no-sim"]);
    assert!(!ok);
    assert!(stderr.contains("cannot re-grid"), "{stderr}");
    // Matching --points is fine (a no-op), and so is omitting it.
    let (_, _, ok) = run(&["run", path.to_str().unwrap(), "--points", "3", "--no-sim"]);
    assert!(ok);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn run_subcommand_adaptive_reports_ci_and_spend() {
    // The precision-preset entry through the CLI: the text table gains CI
    // bounds and a replications-spent column.
    let (stdout, stderr, ok) = run(&["run", "fig5_precision", "--quick", "--points", "2"]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("ci lo"), "{stdout}");
    assert!(stdout.contains("ci hi"));
    assert!(stdout.contains("reps"));
    assert!(stdout.contains("replications spent"));
    assert!(stderr.contains("adaptive sweep"), "{stderr}");

    // The CSV writer threads the same columns through with full precision.
    let (csv, _, ok) = run(&[
        "run",
        "fig5_precision",
        "--quick",
        "--points",
        "2",
        "--out",
        "csv",
    ]);
    assert!(ok);
    let header = csv.lines().next().unwrap();
    assert!(header.contains("Simulation (Lm=256) ci_lo"), "{header}");
    assert!(header.contains("Simulation (Lm=256) reps"));
    assert!(header.contains("Simulation (Lm=512) converged"));

    // And the JSON writer emits the {analysis, simulation} report shape.
    let (json, _, ok) = run(&[
        "run",
        "fig5_precision",
        "--quick",
        "--points",
        "2",
        "--out",
        "json",
    ]);
    assert!(ok);
    assert!(json.contains("\"analysis\""));
    assert!(json.contains("\"simulation\""));
    assert!(json.contains("\"replications\""));
    assert!(json.contains("\"converged\""));
    assert!(json.contains("\"lo\""));
}

#[test]
fn run_subcommand_rel_ci_flag_switches_any_scenario_adaptive() {
    // `describe` surfaces an entry's precision preset…
    let (stdout, _, ok) = run(&["describe", "fig5_precision"]);
    assert!(ok);
    assert!(stdout.contains("\"precision\""), "{stdout}");
    assert!(stdout.contains("\"rel_ci\": 0.05"));
    // …and --rel-ci forces adaptive mode onto a plain fixed entry.
    let (stdout, stderr, ok) = run(&[
        "run",
        "fig5",
        "--quick",
        "--points",
        "2",
        "--rel-ci",
        "0.2",
        "--max-replications",
        "6",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("reps"));
    assert!(stderr.contains("adaptive sweep"));
}

#[test]
fn run_subcommand_rejects_misused_precision_flags() {
    // Fixed replication count and adaptive precision are contradictory.
    let (_, stderr, ok) = run(&["run", "fig5_precision", "--quick", "--replications", "3"]);
    assert!(!ok);
    assert!(stderr.contains("--max-replications"), "{stderr}");
    // A cap without a target has nothing to bound.
    let (_, stderr, ok) = run(&["run", "fig5", "--max-replications", "4"]);
    assert!(!ok);
    assert!(stderr.contains("precision target"), "{stderr}");
    // Custom entries reject the flags loudly instead of ignoring them.
    let (_, stderr, ok) = run(&["run", "table1", "--rel-ci", "0.05"]);
    assert!(!ok);
    assert!(stderr.contains("custom entry"), "{stderr}");
    // Nonsense bounds die at parse time.
    let (_, stderr, ok) = run(&["run", "fig5", "--rel-ci", "-0.1"]);
    assert!(!ok);
    assert!(stderr.contains("--rel-ci"), "{stderr}");
    let (_, stderr, ok) = run(&["run", "fig5", "--max-replications", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--max-replications"), "{stderr}");
}

#[test]
fn run_subcommand_scheduler_flag_is_output_invariant() {
    // The calendar backend must not change a single byte of the figures:
    // same entry, both schedulers, identical stdout (the sweep banner on
    // stderr differs only in timing).
    let heap = run(&["run", "fig5", "--quick", "--points", "2", "--out", "csv"]);
    let calendar = run(&[
        "run",
        "fig5",
        "--quick",
        "--points",
        "2",
        "--out",
        "csv",
        "--scheduler",
        "calendar",
    ]);
    assert!(heap.2 && calendar.2, "{} {}", heap.1, calendar.1);
    assert_eq!(heap.0, calendar.0, "scheduler changed published numbers");
    // An unknown backend dies at parse time, naming the valid ones.
    let (_, stderr, ok) = run(&["run", "fig5", "--scheduler", "ladder"]);
    assert!(!ok);
    assert!(stderr.contains("heap"), "{stderr}");
    assert!(stderr.contains("calendar"), "{stderr}");
}

#[test]
fn perf_gate_fails_on_synthetic_slowdown_and_passes_against_itself() {
    // A baseline claiming absurdly high events/sec makes every measured
    // case a >30% regression: the gate must print the delta table and
    // exit non-zero. (This is the committed workflow's failure mode,
    // tested locally with a doctored baseline.)
    let dir = std::env::temp_dir().join("cocnet_cli_perf_gate");
    std::fs::create_dir_all(&dir).unwrap();
    let inflated = dir.join("inflated.json");
    let case = |name: &str| {
        format!(
            r#"{{"name":"{name}","messages":1,"events":1,"wall_s":1.0,
                 "events_per_sec":1e15,"messages_per_sec":1.0,"peak_live_msgs":1}}"#
        )
    };
    std::fs::write(
        &inflated,
        format!(
            r#"{{"trajectory":[{{"mode":"full","reps":1,"cases":[{},{}]}}]}}"#,
            case("high_load/heap"),
            case("high_load/calendar"),
        ),
    )
    .unwrap();
    let (stdout, stderr, ok) = run(&[
        "run",
        "perf_gate",
        "--quick",
        "--baseline",
        inflated.to_str().unwrap(),
        "--reps",
        "1",
    ]);
    assert!(!ok, "inflated baseline must trip the gate");
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("high_load/heap"), "{stdout}");
    assert!(stderr.contains("regressed"), "{stderr}");
    // A baseline with no case in common is a vacuous gate — also fatal.
    let alien = dir.join("alien.json");
    std::fs::write(
        &alien,
        format!(
            r#"{{"trajectory":[{{"mode":"full","reps":1,"cases":[{}]}}]}}"#,
            case("no_such_case")
        ),
    )
    .unwrap();
    let (_, stderr, ok) = run(&[
        "run",
        "perf_gate",
        "--quick",
        "--baseline",
        alien.to_str().unwrap(),
        "--reps",
        "1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("no case in common"), "{stderr}");
    std::fs::remove_file(&inflated).unwrap();
    std::fs::remove_file(&alien).unwrap();
}

#[test]
fn run_subcommand_table_entry_matches_binary_output() {
    // The registry path and the thin `table1` binary share one code path;
    // spot-check the CLI side produces the table.
    let (stdout, _, ok) = run(&["run", "table1"]);
    assert!(ok);
    assert!(stdout.contains("Table 1. System Organizations for Model Validation"));
    assert!(stdout.contains("1120"));
    assert!(stdout.contains("544"));
}

#[test]
fn locality_flag_lowers_latency() {
    let get = |extra: &[&str]| {
        let mut args = vec!["model", "--org", "544", "--rate", "4e-4"];
        args.extend_from_slice(extra);
        let (stdout, _, ok) = run(&args);
        assert!(ok);
        stdout
            .lines()
            .find(|l| l.contains("mean message latency"))
            .unwrap()
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .parse::<f64>()
            .unwrap()
    };
    let uniform = get(&[]);
    let local = get(&["--locality", "0.8"]);
    assert!(local < uniform, "local {local} vs uniform {uniform}");
}
