//! End-to-end tests of precision-driven (adaptive) replication control:
//! determinism across execution strategies, convergence guarantees, the
//! fixed-mode equivalence contract, and the CI-bearing series plumbing.

use cocnet::registry::small_spec_48;
use cocnet::runner::{PrecisionSpec, Scenario, Seeding};
use cocnet::sim::SimConfig;
use cocnet_model::Workload;

fn demo_sim(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 200,
        measured: 2_000,
        drain: 200,
        seed,
        ..SimConfig::default()
    }
}

fn adaptive_scenario(rel: f64, max_replications: usize) -> Scenario {
    Scenario::new("adaptive e2e", small_spec_48())
        .with_workload("Lm=256", Workload::new(0.0, 32, 256.0).unwrap())
        .with_grid(1e-3, 3)
        .with_seeding(Seeding::PerPoint)
        .with_precision(PrecisionSpec {
            rel_ci: Some(rel),
            max_replications,
            wave: 2,
            ..PrecisionSpec::default()
        })
        .with_sim(demo_sim(23))
}

/// The acceptance contract: the adaptive result is a pure function of the
/// scenario — the parallel wave schedule and the serial reference produce
/// the same converged replication counts and f64-bit-equal means/CIs, on
/// any thread count (this test is the thread-count-of-the-machine
/// instance; the schedule itself never consults the pool size).
#[test]
fn adaptive_parallel_bit_identical_to_serial() {
    let s = adaptive_scenario(0.1, 10);
    let par = s.run_sim_adaptive();
    let ser = s.run_sim_adaptive_serial();
    assert_eq!(par.len(), ser.len());
    for (pw, sw) in par.iter().zip(&ser) {
        for (pp, sp) in pw.iter().zip(sw) {
            assert_eq!(pp.replications(), sp.replications());
            assert_eq!(pp.converged, sp.converged);
            assert_eq!(pp.saturated, sp.saturated);
            assert_eq!(pp.summary.replication_means, sp.summary.replication_means);
            assert_eq!(pp.summary.mean.to_bits(), sp.summary.mean.to_bits());
            assert_eq!(pp.ci.half_width.to_bits(), sp.ci.half_width.to_bits());
        }
    }
    // And the whole thing is reproducible run to run.
    let again = s.run_sim_adaptive();
    for (aw, pw) in again.iter().zip(&par) {
        for (ap, pp) in aw.iter().zip(pw) {
            assert_eq!(ap.summary.replication_means, pp.summary.replication_means);
        }
    }
}

/// A reachable target provably converges: every non-saturated point
/// reports a half-width within the declared bound.
#[test]
fn converged_points_meet_their_declared_target() {
    let s = adaptive_scenario(0.15, 16);
    let detailed = s.run_sim_adaptive();
    let mut converged = 0;
    for point in detailed.iter().flatten() {
        if point.converged {
            converged += 1;
            assert!(
                point.ci.half_width <= 0.15 * point.summary.mean,
                "rate {}: half-width {} exceeds 15% of mean {}",
                point.rate,
                point.ci.half_width,
                point.summary.mean
            );
            assert!(point.replications() >= 2);
        }
        assert!(point.replications() <= 16);
    }
    assert!(converged > 0, "no point converged at a 15% target");
}

/// An unreachable target must stop at the cap with `converged = false` —
/// never loop.
#[test]
fn impossible_target_trips_the_cap() {
    let s = adaptive_scenario(1e-6, 4);
    for point in s.run_sim_adaptive().iter().flatten() {
        assert!(!point.converged);
        assert_eq!(point.replications(), 4);
    }
}

/// Adaptive replications reuse the fixed-mode seed schedule, so an
/// adaptive point that spent k replications equals the fixed k-replication
/// run of the same scenario, bitwise.
#[test]
fn adaptive_spend_replays_as_a_fixed_run() {
    let s = adaptive_scenario(0.1, 8);
    let adaptive = s.run_sim_adaptive();
    for (w, points) in adaptive.iter().enumerate() {
        for (p, point) in points.iter().enumerate() {
            let mut fixed = s.clone();
            fixed.precision = None;
            fixed.replications = point.replications();
            let fixed_detailed = fixed.run_sim_detailed();
            assert_eq!(
                point.summary.replication_means,
                fixed_detailed[w][p].summary().replication_means,
                "workload {w} point {p}"
            );
        }
    }
}

/// The CI series carries level, bounds and spend through to the report
/// layer, and the scenario round-trips through JSON with its precision.
#[test]
fn adaptive_series_and_serde_round_trip() {
    let s = adaptive_scenario(0.15, 8);
    let json = serde_json::to_string_pretty(&s).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back.precision, s.precision);
    back.validate().unwrap();

    let detailed = s.run_sim_adaptive();
    let series = s.adaptive_series(&detailed);
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].level, 0.95);
    for (ci_point, point) in series[0].points.iter().zip(&detailed[0]) {
        assert_eq!(ci_point.y, point.summary.mean);
        assert_eq!(ci_point.lo, point.ci.lo());
        assert_eq!(ci_point.hi, point.ci.hi());
        assert_eq!(ci_point.replications, point.replications());
    }

    // A scenario file declaring `precision` parses and validates with no
    // Rust involvement beyond the serde layer.
    let declared = r#"{
        "name": "from file",
        "spec": {"m": 4, "clusters": [
            {"n": 1, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 1, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 2, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}},
            {"n": 2, "icn1": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02},
                     "ecn1": {"bandwidth": 250.0, "network_latency": 0.05, "switch_latency": 0.01}}],
            "icn2": {"bandwidth": 500.0, "network_latency": 0.01, "switch_latency": 0.02}},
        "workloads": [{"label": "Lm=256", "workload": {"lambda_g": 0.0, "msg_flits": 16, "flit_bytes": 256.0}}],
        "rates": [2e-4],
        "precision": {"rel_ci": 0.1, "max_replications": 6}
    }"#;
    let from_file: Scenario = serde_json::from_str(declared).unwrap();
    from_file.validate().unwrap();
    let p = from_file.precision.unwrap();
    assert_eq!(p.rel_ci, Some(0.1));
    assert_eq!(p.max_replications, 6);
    assert_eq!(p.level, 0.95); // defaulted
    assert_eq!(p.min_replications, 2); // defaulted

    // Typos inside the precision object fail loudly.
    let typo = declared.replace("rel_ci", "rel_cl");
    let err = serde_json::from_str::<Scenario>(&typo).unwrap_err();
    assert!(err.to_string().contains("rel_cl"), "{err}");
}

/// Warm-up auditing threads through the adaptive accumulator: a scenario
/// with no warm-up at heavy load flags replications.
#[test]
fn warmup_audit_counts_surface_per_point() {
    use cocnet_topology::{ClusterSpec, NetworkCharacteristics, SystemSpec};
    // The 6-node system of the engine's own audit test, at the same
    // near-saturation load: with no warm-up the measured stream starts in
    // the transient, so MSER-5 must flag it.
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let c = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    let spec = SystemSpec::new(4, vec![c(1), c(1), c(2), c(2)], net1).unwrap();
    let mut s = Scenario::new("audit e2e", spec)
        .with_workload("Lm=256", Workload::new(0.0, 32, 256.0).unwrap())
        .with_rates(vec![8e-4])
        .with_precision(PrecisionSpec {
            rel_ci: Some(0.2),
            max_replications: 4,
            wave: 2,
            ..PrecisionSpec::default()
        })
        .with_sim(demo_sim(18));
    s.sim.audit_warmup = true;
    s.sim.warmup = 0;
    let detailed = s.run_sim_adaptive();
    let point = &detailed[0][0];
    assert!(
        point.warmup_flagged > 0,
        "zero warm-up at near-saturation load must be flagged \
         ({} replications, 0 flagged)",
        point.replications()
    );
    assert!(point.warmup_flagged <= point.replications());
}
