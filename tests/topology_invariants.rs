//! Cross-crate structural invariants: the topology crate's trees/routes and
//! the model crate's closed-form distributions must agree with brute force
//! for every parameterisation, not just the paper's.

use cocnet::model::prob::{hop_distribution, mean_distance, mean_distance_closed_form};
use cocnet::topology::{Endpoint, Graph, MPortNTree};
use proptest::prelude::*;

/// Strategy over tree parameters kept small enough for exhaustive
/// brute-force comparison.
fn tree_params() -> impl Strategy<Value = (u32, u32)> {
    (1u32..=4)
        .prop_map(|half| half * 2) // even m in 2..=8
        .prop_flat_map(|m| {
            let max_n = match m {
                2 => 4u32,
                4 => 4,
                6 => 3,
                _ => 2,
            };
            (Just(m), 1..=max_n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn graph_structure_validates((m, n) in tree_params()) {
        let g = Graph::build(MPortNTree::new(m, n).unwrap());
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_channels(), 2 * n as usize * g.tree().num_nodes());
    }

    #[test]
    fn routes_have_length_2h_and_chain((m, n) in tree_params()) {
        let tree = MPortNTree::new(m, n).unwrap();
        let g = Graph::build(tree);
        let nodes = tree.num_nodes();
        for src in 0..nodes {
            for dst in 0..nodes {
                let r = g.route(src, dst).unwrap();
                let h = tree.nca_level(src, dst).unwrap();
                prop_assert_eq!(r.channels.len(), 2 * h as usize);
                // Path must chain and terminate at the destination.
                for w in r.channels.windows(2) {
                    prop_assert_eq!(g.channel(w[0]).to, g.channel(w[1]).from);
                }
                if let Some(&last) = r.channels.last() {
                    prop_assert_eq!(g.channel(last).to, Endpoint::Node(dst as u32));
                }
            }
        }
    }

    #[test]
    fn hop_distribution_matches_brute_force((m, n) in tree_params()) {
        let tree = MPortNTree::new(m, n).unwrap();
        let hist = tree.nca_histogram();
        let total: u64 = hist.iter().sum();
        let p = hop_distribution(m, n);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-12);
        for h in 1..=n as usize {
            let emp = hist[h - 1] as f64 / total as f64;
            prop_assert!((p[h - 1] - emp).abs() < 1e-12,
                "m={} n={} h={}: {} vs {}", m, n, h, p[h - 1], emp);
        }
    }

    #[test]
    fn mean_distance_forms_agree((m, n) in tree_params()) {
        let series = mean_distance(m, n);
        let closed = mean_distance_closed_form(m, n);
        let brute = MPortNTree::new(m, n).unwrap().mean_distance_brute_force();
        prop_assert!((series - closed).abs() < 1e-9);
        prop_assert!((series - brute).abs() < 1e-9);
    }

    #[test]
    fn routes_are_deterministic_and_symmetric_in_length((m, n) in tree_params()) {
        let tree = MPortNTree::new(m, n).unwrap();
        let g = Graph::build(tree);
        let nodes = tree.num_nodes();
        let pairs = [(0, nodes - 1), (nodes / 2, 0), (1, nodes / 2)];
        for &(a, b) in &pairs {
            if a == b { continue; }
            let r1 = g.route(a, b).unwrap();
            let r2 = g.route(a, b).unwrap();
            prop_assert_eq!(&r1, &r2);
            // Up*/Down* in a fat tree: both directions cross the same
            // number of links (the NCA level is symmetric).
            let back = g.route(b, a).unwrap();
            prop_assert_eq!(back.channels.len(), r1.channels.len());
        }
    }
}

#[test]
fn exit_roots_cover_all_roots_in_paper_trees() {
    // The deterministic exit-root choice must spread sources over every
    // root, otherwise concentrator traffic would hot-spot (see DESIGN.md).
    for (m, n) in [(4u32, 2u32), (4, 3), (8, 2), (8, 3)] {
        let g = Graph::build(MPortNTree::new(m, n).unwrap());
        let mut seen = std::collections::HashSet::new();
        for src in 0..g.tree().num_nodes() {
            let r = g.route_to_root(src).unwrap();
            if let Endpoint::Switch(s) = g.channel(*r.channels.last().unwrap()).to {
                seen.insert(s);
            }
        }
        assert_eq!(seen.len(), g.roots().len(), "m={m} n={n}");
    }
}
