//! Heterogeneity study: how cluster-size imbalance changes system latency
//! at a fixed total node count.
//!
//! The paper's model is built specifically to handle *cluster size*
//! heterogeneity (assumption 3) and *network* heterogeneity (assumption 5).
//! This example holds N and C fixed and redistributes nodes among clusters,
//! then separately skews the network speeds, showing both effects — the
//! kind of analysis the model makes cheap enough to run interactively.
//!
//! ```text
//! cargo run --release --example heterogeneity
//! ```

use cocnet::prelude::*;

fn netchar(bw: f64) -> NetworkCharacteristics {
    NetworkCharacteristics::new(bw, 0.01, 0.02).unwrap()
}

fn system(m: u32, heights: &[u32], ecn_bw: f64) -> SystemSpec {
    let clusters = heights
        .iter()
        .map(|&n| ClusterSpec {
            n,
            icn1: netchar(500.0),
            ecn1: netchar(ecn_bw),
            topology: Default::default(),
        })
        .collect();
    SystemSpec::new(m, clusters, netchar(500.0)).expect("valid system")
}

fn main() {
    let opts = ModelOptions::default();
    let wl = Workload::new(0.0, 32, 256.0).unwrap();

    // --- Cluster-size heterogeneity at fixed N = 96, C = 8, m = 4. ---
    // (m=4 clusters: n=1 → 4 nodes, n=2 → 8, n=3 → 16, n=4 → 32.)
    println!("=== cluster-size heterogeneity (N=96, C=8, m=4) ===");
    // All three layouts have exactly N = 96 nodes across C = 8 clusters
    // (m=4 heights: n=1 → 4, n=2 → 8, n=3 → 16, n=4 → 32 nodes).
    let layouts: [(&str, Vec<u32>); 3] = [
        ("balanced  (4 x 16 + 4 x 8)", vec![3, 3, 3, 3, 2, 2, 2, 2]),
        (
            "skewed    (1 x 32, mixed rest)",
            vec![4, 3, 3, 2, 2, 2, 1, 1],
        ),
        (
            "extreme   (2 x 32 + 2 x 8 + 4 x 4)",
            vec![4, 4, 2, 2, 1, 1, 1, 1],
        ),
    ];
    println!(
        "{:<36} {:>6} {:>12} {:>14}",
        "layout", "N", "latency@1e-4", "saturation"
    );
    for (name, heights) in &layouts {
        let spec = system(4, heights, 250.0);
        let lat = evaluate(&spec, &wl.with_rate(1e-4), &opts)
            .map(|o| format!("{:.2}", o.latency))
            .unwrap_or_else(|_| "saturated".into());
        let sat = saturation_point(&spec, &wl, &opts, 1e-4).unwrap();
        println!(
            "{name:<36} {:>6} {lat:>12} {sat:>14.3e}",
            spec.total_nodes()
        );
    }

    // Per-cluster view of the most skewed layout: small clusters pay the
    // inter-cluster price for almost all of their traffic.
    let spec = system(4, &layouts[2].1, 250.0);
    let out = evaluate(&spec, &wl.with_rate(1e-4), &opts).unwrap();
    println!("\nper-cluster breakdown of the extreme layout at λ=1e-4:");
    for c in &out.per_cluster {
        println!(
            "  cluster {} (N_i={:>2}): U={:.3}  mean={:.2}",
            c.cluster,
            spec.cluster_nodes(c.cluster),
            c.outgoing_probability,
            c.mean
        );
    }

    // --- Network heterogeneity: slowing the ECN1s at fixed topology. ---
    println!("\n=== network heterogeneity (balanced layout, ECN1 bandwidth sweep) ===");
    println!(
        "{:>10} {:>14} {:>14}",
        "ECN1 bw", "latency@1e-4", "saturation"
    );
    for bw in [500.0, 375.0, 250.0, 125.0] {
        let spec = system(4, &layouts[0].1, bw);
        let lat = evaluate(&spec, &wl.with_rate(1e-4), &opts)
            .map(|o| format!("{:.2}", o.latency))
            .unwrap_or_else(|_| "saturated".into());
        let sat = saturation_point(&spec, &wl, &opts, 1e-4).unwrap();
        println!("{bw:>10} {lat:>14} {sat:>14.3e}");
    }

    // Validate one heterogeneous point by simulation.
    println!("\nspot-check by simulation (balanced layout, ECN1 bw=250, λ=1e-4):");
    let spec = system(4, &layouts[0].1, 250.0);
    let mut cfg = SimConfig::quick(11);
    cfg.measured = 20_000;
    let sim = run_simulation(&spec, &wl.with_rate(1e-4), Pattern::Uniform, &cfg);
    let model = evaluate(&spec, &wl.with_rate(1e-4), &opts).unwrap().latency;
    println!(
        "  model {:.2} vs sim {:.2} ({:+.1} %)",
        model,
        sim.latency.mean,
        (model - sim.latency.mean) / sim.latency.mean * 100.0
    );
}
