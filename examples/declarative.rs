//! Declarative scenarios: load a committed scenario file, shrink it to a
//! demo-sized population, and run both the analytical model and the
//! simulator through the unified runner — the same path `cocnet run
//! scenarios/fig5.json` takes.
//!
//! ```text
//! cargo run --release --example declarative
//! ```

use cocnet::prelude::*;
use cocnet::report::render_figure;
use cocnet::sim::SimConfig;

fn main() {
    // The committed JSON twin of the Fig. 5 registry entry.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/fig5.json");
    let text = std::fs::read_to_string(&path).expect("committed scenario file");
    let mut scenario: Scenario = serde_json::from_str(&text).expect("scenario parses");
    scenario.validate().expect("scenario validates");

    // Everything is plain data — adjust it like any other value. Here:
    // a demo-sized population and a 5-point grid.
    scenario.sim = SimConfig {
        warmup: 500,
        measured: 5_000,
        drain: 500,
        ..scenario.sim
    };
    scenario.rates = scenario.rates.with_steps(5);

    let mut series = scenario.run_model();
    series.extend(scenario.run_sim());
    println!("{}", render_figure(&scenario.name, &series));

    // Authoring a brand-new scenario needs no Rust either: serialize any
    // Scenario value to JSON and `cocnet run` the file.
    let json = serde_json::to_string_pretty(&scenario).expect("serialises");
    println!(
        "(this exact experiment as a runnable scenario file: {} bytes of JSON)",
        json.len()
    );
}
