//! Capacity planning with the analytical model: pick the cheapest system
//! organization that meets a latency SLO at a required per-node load.
//!
//! This is the workflow the paper argues analytical models enable
//! ("a practical evaluation tool that can help system designer to explore
//! the design space"): enumerate candidate organizations, evaluate each in
//! microseconds, keep the feasible ones — then verify the chosen design
//! once by simulation.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use cocnet::prelude::*;
use cocnet::presets;

/// A candidate design: `count` clusters of height `n` with switch arity `m`.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    m: u32,
    n: u32,
    count: usize,
}

impl Candidate {
    fn build(&self) -> Option<SystemSpec> {
        let cluster = ClusterSpec {
            n: self.n,
            icn1: presets::net1(),
            ecn1: presets::net2(),
            topology: Default::default(),
        };
        SystemSpec::new(self.m, vec![cluster; self.count], presets::net1()).ok()
    }

    /// Rough cost proxy: switches are what you buy.
    fn switch_count(&self, spec: &SystemSpec) -> usize {
        let per_cluster = spec.cluster_tree(0).num_switches();
        let icn2 = spec.icn2_tree().num_switches();
        // ICN1 + ECN1 per cluster, plus the global ICN2.
        2 * per_cluster * spec.num_clusters() + icn2
    }
}

fn main() {
    // Requirements: at least 250 nodes, per-node rate 2e-4 of 32-flit
    // messages, mean latency under 70 time units.
    let required_nodes = 250;
    let rate = 2e-4;
    let slo = 70.0;
    let wl = Workload::new(rate, 32, 256.0).unwrap();
    let opts = ModelOptions::default();

    println!("requirement: N >= {required_nodes}, λ = {rate:.1e}, mean latency < {slo}");
    println!(
        "{:<22} {:>6} {:>9} {:>10} {:>10} {:>9}",
        "candidate", "N", "switches", "latency", "sat rate", "feasible"
    );

    let mut candidates = Vec::new();
    for m in [4u32, 8] {
        for n in 1..=5u32 {
            for n_c in 1..=4u32 {
                let count = 2 * (m as usize / 2).pow(n_c);
                candidates.push(Candidate { m, n, count });
            }
        }
    }

    let mut best: Option<(usize, String)> = None;
    for cand in candidates {
        let Some(spec) = cand.build() else { continue };
        if spec.total_nodes() < required_nodes {
            continue;
        }
        let name = format!("m={} n={} C={}", cand.m, cand.n, cand.count);
        let latency = evaluate(&spec, &wl, &opts).map(|o| o.latency);
        let sat = saturation_point(&spec, &wl, &opts, 1e-4).unwrap_or(0.0);
        let feasible = matches!(latency, Ok(l) if l < slo) && sat > rate;
        let switches = cand.switch_count(&spec);
        println!(
            "{:<22} {:>6} {:>9} {:>10} {:>10.2e} {:>9}",
            name,
            spec.total_nodes(),
            switches,
            latency
                .map(|l| format!("{l:.2}"))
                .unwrap_or_else(|_| "saturated".into()),
            sat,
            if feasible { "yes" } else { "no" }
        );
        if feasible && best.as_ref().map(|(s, _)| switches < *s).unwrap_or(true) {
            best = Some((switches, name));
        }
    }

    let Some((switches, name)) = best else {
        println!("\nno candidate meets the requirement");
        return;
    };
    println!("\ncheapest feasible design: {name} ({switches} switches)");

    // Verify the winner once by simulation.
    let winner = {
        let (m, rest) = name.split_once(' ').unwrap();
        let m: u32 = m.trim_start_matches("m=").parse().unwrap();
        let (n, c) = rest.split_once(' ').unwrap();
        let n: u32 = n.trim_start_matches("n=").parse().unwrap();
        let count: usize = c.trim_start_matches("C=").parse().unwrap();
        Candidate { m, n, count }.build().unwrap()
    };
    let mut cfg = SimConfig::quick(2024);
    cfg.measured = 20_000;
    let sim = run_simulation(&winner, &wl, Pattern::Uniform, &cfg);
    println!(
        "simulation check: mean latency {:.2} (completed = {}); SLO {}",
        sim.latency.mean,
        sim.completed,
        if sim.latency.mean < slo * 1.4 {
            "holds within the documented model offset"
        } else {
            "VIOLATED — revisit"
        }
    );
}
