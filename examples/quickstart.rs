//! Quickstart: predict the mean message latency of a heterogeneous
//! cluster-of-clusters system and check the prediction by simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cocnet::prelude::*;

fn main() {
    // A small heterogeneous system: m=4 switches, four clusters — two with
    // 8 nodes (n=2) and two with 16 nodes (n=3). Fast intra-cluster
    // networks, a slower inter-cluster access network, fast global ICN2
    // (the paper's Table 2 characteristics).
    let net1 = NetworkCharacteristics::new(500.0, 0.01, 0.02).unwrap();
    let net2 = NetworkCharacteristics::new(250.0, 0.05, 0.01).unwrap();
    let cluster = |n| ClusterSpec {
        n,
        icn1: net1,
        ecn1: net2,
        topology: Default::default(),
    };
    let spec = SystemSpec::new(
        4,
        vec![cluster(2), cluster(2), cluster(3), cluster(3)],
        net1,
    )
    .expect("valid system");

    println!(
        "system: C={} clusters, N={} nodes, ICN2 height n_c={}",
        spec.num_clusters(),
        spec.total_nodes(),
        spec.icn2_height().unwrap()
    );

    // Messages: 32 flits of 256 bytes, Poisson rate 2e-4 per node.
    let wl = Workload::new(2e-4, 32, 256.0).unwrap();

    // 1. Analytical prediction (instant).
    let predicted = evaluate(&spec, &wl, &ModelOptions::default()).expect("stable load");
    println!("\nanalytical model:");
    println!("  mean message latency = {:.2}", predicted.latency);
    for c in &predicted.per_cluster {
        println!(
            "  cluster {}: U={:.3}  L_in={:.2}  L_out={:.2}  mean={:.2}",
            c.cluster,
            c.outgoing_probability,
            c.intra.total(),
            c.inter.total(),
            c.mean
        );
    }

    // 2. Discrete-event simulation (the paper's validation methodology,
    //    scaled down for a quick run).
    let mut cfg = SimConfig::quick(42);
    cfg.measured = 20_000;
    let sim = run_simulation(&spec, &wl, Pattern::Uniform, &cfg);
    println!("\nsimulation ({} measured messages):", sim.latency.count);
    println!("  mean latency = {}", sim.latency);
    println!(
        "  intra = {:.2} ({} msgs), inter = {:.2} ({} msgs)",
        sim.intra.mean, sim.intra.count, sim.inter.mean, sim.inter.count
    );

    let err = (predicted.latency - sim.latency.mean) / sim.latency.mean * 100.0;
    println!("\nmodel vs simulation: {err:+.1} %");

    // 3. Where does this system stop being usable? The analytical model
    //    finds the saturation rate in milliseconds.
    let sat = saturation_point(&spec, &wl, &ModelOptions::default(), 1e-4).unwrap();
    println!("predicted saturation rate: {sat:.3e} messages/node/time-unit");
}
