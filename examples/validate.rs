//! Full model-vs-simulation validation of one paper figure from the public
//! API — a scaled-down version of what `cargo run -p cocnet-bench --bin
//! fig5` does with the paper's full message counts.
//!
//! ```text
//! cargo run --release --example validate [fig3|fig4|fig5|fig6]
//! ```

use cocnet::prelude::*;
use cocnet::report::render_figure;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fig5".into());
    let fig = match which.as_str() {
        "fig3" => Figure::Fig3,
        "fig4" => Figure::Fig4,
        "fig5" => Figure::Fig5,
        "fig6" => Figure::Fig6,
        other => {
            eprintln!("unknown figure {other:?}; use fig3|fig4|fig5|fig6");
            std::process::exit(1);
        }
    };

    let cfg = figure_config(fig);
    println!("reproducing {} …", cfg.title);

    let points = 8;
    let model_series = run_figure_model(&cfg, &ModelOptions::default(), points);

    // Scaled-down simulation so the example finishes in seconds; the bench
    // binaries use the paper's full 10k/100k/10k methodology.
    let sim_cfg = SimConfig {
        warmup: 1_000,
        measured: 10_000,
        drain: 1_000,
        seed: 2006,
        ..SimConfig::default()
    };
    let sim_series = run_figure_sim(&cfg, &sim_cfg, points);

    let mut all = model_series.clone();
    all.extend(sim_series.clone());
    println!("{}", render_figure(&cfg.title, &all));

    for (m, s) in model_series.iter().zip(&sim_series) {
        let rows = compare_series(m, s);
        if rows.is_empty() {
            println!("{} — no overlapping stable points", m.label);
            continue;
        }
        let light = cocnet::compare::light_load_error(&rows, 3).unwrap();
        println!(
            "{} vs {}: {} overlapping points, light-load |err| = {light:.1} %",
            m.label,
            s.label,
            rows.len()
        );
    }
}
