//! Precision-driven experiments: declare *how precise* each point must be
//! instead of *how many* replications to run, and let the runner spend
//! exactly as many seeds as each point needs.
//!
//! The scenario below targets a 5 % relative CI half-width at 95 %
//! confidence. Light-load points are cheap (replication means agree
//! quickly); points near saturation are noisy and spend more — the
//! per-point `reps` column makes that visible.
//!
//! ```text
//! cargo run --release --example precision            # demo populations
//! cargo run --release --example precision -- --quick # CI-smoke populations
//! ```

use cocnet::prelude::*;
use cocnet::runner::PrecisionSpec;
use cocnet::sim::SimConfig;
use cocnet::stats::Table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // A 48-node system (four m=4 clusters on the Table 2 networks) swept
    // to saturation under a 5 % relative-CI target: at most 12
    // replications per point, added in waves of 2 after the initial 2.
    let spec = cocnet::registry::small_spec_48();
    let scenario = Scenario::new("precision demo (N=48, M=32, Lm=256)", spec)
        .with_workload("Lm=256", Workload::new(0.0, 32, 256.0).unwrap())
        .with_grid(1.2e-3, if quick { 3 } else { 5 })
        .with_seeding(Seeding::PerPoint)
        .with_precision(PrecisionSpec {
            rel_ci: Some(0.05),
            max_replications: 12,
            wave: 2,
            ..PrecisionSpec::default()
        })
        .with_sim(SimConfig {
            warmup: if quick { 200 } else { 1_000 },
            measured: if quick { 2_000 } else { 10_000 },
            drain: if quick { 200 } else { 1_000 },
            seed: 7,
            ..SimConfig::default()
        });
    scenario.validate().expect("scenario validates");

    let detailed = scenario.run_sim_adaptive();
    let mut table = Table::new([
        "rate",
        "mean latency",
        "ci lo",
        "ci hi",
        "reps",
        "converged",
    ]);
    for point in &detailed[0] {
        table.push_row([
            format!("{:.2e}", point.rate),
            format!("{:.2}", point.summary.mean),
            format!("{:.2}", point.ci.lo()),
            format!("{:.2}", point.ci.hi()),
            point.replications().to_string(),
            if point.saturated {
                "saturated".into()
            } else {
                point.converged.to_string()
            },
        ]);
    }
    println!("{}", table.render());

    let spent: usize = detailed[0].iter().map(|p| p.replications()).sum();
    let fixed_cost = detailed[0].len() * 12;
    println!(
        "adaptive control spent {spent} simulations where a fixed worst-case \
         count would spend {fixed_cost};\nevery converged point's CI half-width \
         is within 5% of its mean.\n\nThe same experiment needs no Rust: add \
         \"precision\": {{\"rel_ci\": 0.05}} to any scenario JSON,\nor run \
         `cocnet run <name> --rel-ci 0.05`."
    );
}
