//! Design-space exploration (the Fig. 7 scenario, generalised): how much
//! does upgrading each network's bandwidth help, and which network is the
//! bottleneck?
//!
//! The paper's §4 observes that "the inter-cluster networks, especially
//! ICN2, are the bottlenecks of the system" and demonstrates a 20 % ICN2
//! bandwidth boost. This example sweeps boost factors over *each* network
//! class independently — the kind of what-if a system designer would run
//! before buying hardware.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use cocnet::prelude::*;
use cocnet::presets;

/// Applies a bandwidth factor to one network class of the spec.
fn boost(spec: &SystemSpec, which: &str, factor: f64) -> SystemSpec {
    let mut clusters = spec.clusters.clone();
    let mut icn2 = spec.icn2;
    match which {
        "ICN1" => {
            for c in &mut clusters {
                c.icn1 = c.icn1.scale_bandwidth(factor);
            }
        }
        "ECN1" => {
            for c in &mut clusters {
                c.ecn1 = c.ecn1.scale_bandwidth(factor);
            }
        }
        "ICN2" => icn2 = icn2.scale_bandwidth(factor),
        _ => unreachable!(),
    }
    SystemSpec::new(spec.m, clusters, icn2).expect("scaled spec stays valid")
}

fn main() {
    let opts = ModelOptions::default();
    let wl = presets::wl_m128_l256();

    for (name, spec) in [
        ("N=544", presets::org_544()),
        ("N=1120", presets::org_1120()),
    ] {
        println!("=== {name} (M=128 flits, 256-byte flits) ===");
        let base_sat = saturation_point(&spec, &wl, &opts, 1e-4).unwrap();
        println!("base saturation rate: {base_sat:.3e}");

        // Which single-network upgrade buys the most halfway to saturation?
        let probe_rate = 0.5 * base_sat;
        let base_lat = evaluate(&spec, &wl.with_rate(probe_rate), &opts)
            .unwrap()
            .latency;
        println!("base latency at λ={probe_rate:.2e}: {base_lat:.2}");
        println!(
            "{:<8} {:>10} {:>14} {:>16}",
            "network", "+20% bw", "latency gain%", "saturation gain%"
        );
        for which in ["ICN1", "ECN1", "ICN2"] {
            let boosted = boost(&spec, which, 1.2);
            let lat = evaluate(&boosted, &wl.with_rate(probe_rate), &opts)
                .unwrap()
                .latency;
            let sat = saturation_point(&boosted, &wl, &opts, 1e-4).unwrap();
            println!(
                "{which:<8} {:>10.2} {:>14.2} {:>16.2}",
                lat,
                (base_lat - lat) / base_lat * 100.0,
                (sat - base_sat) / base_sat * 100.0
            );
        }

        // The paper's Fig. 7 comparison: latency curves base vs +20 % ICN2.
        let boosted = boost(&spec, "ICN2", 1.2);
        println!("\nFig. 7-style curves (λ, base, +20% ICN2):");
        for i in 1..=6 {
            let rate = presets::rates::FIG7_MAX * i as f64 / 6.0;
            let b = evaluate(&spec, &wl.with_rate(rate), &opts)
                .map(|o| format!("{:.2}", o.latency))
                .unwrap_or_else(|_| "sat".into());
            let x = evaluate(&boosted, &wl.with_rate(rate), &opts)
                .map(|o| format!("{:.2}", o.latency))
                .unwrap_or_else(|_| "sat".into());
            println!("  {rate:.2e}  {b:>10}  {x:>10}");
        }
        println!();
    }
}
